"""Tests for group embedding aggregation."""

import numpy as np
import pytest

from repro.grouping import MetisGrouper, OpFeatureExtractor
from repro.placement import GroupEmbedder


@pytest.fixture
def setup(layered_graph):
    ex = OpFeatureExtractor(layered_graph)
    emb = GroupEmbedder(ex, num_groups=6)
    assignment = MetisGrouper(6).assign(layered_graph)
    return layered_graph, ex, emb, assignment


class TestGroupEmbedder:
    def test_shape_with_adjacency(self, setup):
        g, ex, emb, a = setup
        out = emb.embed(a)
        assert out.shape == (6, ex.num_types + 3 + 6)
        assert emb.dim == out.shape[1]

    def test_shape_without_adjacency(self, layered_graph):
        ex = OpFeatureExtractor(layered_graph)
        emb = GroupEmbedder(ex, 6, include_adjacency=False)
        assert emb.embed(MetisGrouper(6).assign(layered_graph)).shape == (6, ex.num_types + 3)

    def test_type_fractions_sum_to_one_for_nonempty(self, setup):
        g, ex, emb, a = setup
        out = emb.embed(a)
        frac = out[:, : ex.num_types]
        sizes = np.bincount(a, minlength=6)
        for gi in range(6):
            if sizes[gi]:
                assert frac[gi].sum() == pytest.approx(1.0)
            else:
                assert frac[gi].sum() == 0.0

    def test_empty_groups_zero_embedding(self, layered_graph):
        ex = OpFeatureExtractor(layered_graph)
        emb = GroupEmbedder(ex, 10)
        a = np.zeros(layered_graph.num_ops, dtype=np.int64)  # all in group 0
        out = emb.embed(a)
        assert np.allclose(out[1:, : ex.num_types + 3], 0.0)

    def test_comm_matrix_zero_diagonal(self, setup):
        g, ex, emb, a = setup
        _, comm = emb.embed_with_adjacency(a)
        assert np.allclose(np.diag(comm), 0.0)

    def test_comm_matrix_counts_cut_bytes(self, setup):
        from repro.grouping import cut_cost

        g, ex, emb, a = setup
        _, comm = emb.embed_with_adjacency(a)
        assert comm.sum() == pytest.approx(cut_cost(g, a))

    def test_batch_matches_single(self, setup, rng):
        g, ex, emb, a = setup
        a2 = rng.integers(0, 6, size=g.num_ops)
        batch = emb.embed_batch(np.stack([a, a2]))
        assert batch.shape == (6, 2, emb.dim)
        assert np.allclose(batch[:, 0], emb.embed(a))
        assert np.allclose(batch[:, 1], emb.embed(a2))

    def test_values_bounded(self, setup):
        _, _, emb, a = setup
        out = emb.embed(a)
        assert np.all(np.isfinite(out))
        assert out.min() >= 0.0 and out.max() <= 1.0 + 1e-9
