"""Loopback tests for the measurement service (`repro.service`).

Everything runs against a real `MeasurementServer` on 127.0.0.1:0 — the
wire, threading and shutdown paths are the ones production uses, just on
the loopback interface.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro import (
    EvaluationPolicy,
    MeasurementServer,
    PlacementEnvironment,
    PlacementSearch,
    PostAgent,
    RemoteBackend,
    SearchConfig,
    SerialBackend,
)
from repro.core.events import SearchCallback
from repro.graph.models import build_random_layered
from repro.service import protocol
from repro.service.protocol import HandshakeError, ProtocolError
from repro.sim import EvaluationFault, Topology
from repro.sim.environment import RawOutcome


def _graph():
    return build_random_layered(num_layers=6, width=5, seed=7)


def _env(seed=0, graph=None, topology=None):
    return PlacementEnvironment(
        graph if graph is not None else _graph(),
        topology if topology is not None else Topology.default_4gpu(num_gpus=2),
        seed=seed,
    )


def _placements(env, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, env.num_devices, size=env.graph.num_ops, dtype=np.int64)
        for _ in range(n)
    ]


@pytest.fixture
def server():
    srv = MeasurementServer(_env(seed=99), port=0, workers=2).start()
    yield srv
    srv.close()


# ---------------------------------------------------------------------- #
class TestProtocol:
    def test_raw_outcome_roundtrip(self):
        ok = RawOutcome(0.0123)
        assert protocol.decode_raw(protocol.encode_raw(ok)) == ok
        oom = RawOutcome(None, oom_detail={1: (2.0, 1.5)})
        back = protocol.decode_raw(protocol.encode_raw(oom))
        assert back.base_time is None and back.oom_detail == {1: (2.0, 1.5)}

    def test_encoded_raw_is_plain_json(self):
        encoded = protocol.encode_raw(RawOutcome(1.0, oom_detail={0: (1.0, 0.5)}))
        assert json.loads(json.dumps(encoded)) == encoded

    def test_decode_placement_validates_shape(self):
        with pytest.raises(ProtocolError, match="flat list of 4"):
            protocol.decode_placement([0, 1], num_ops=4)
        out = protocol.decode_placement([0, 1, 0, 1], num_ops=4)
        assert out.dtype == np.int64 and out.tolist() == [0, 1, 0, 1]

    def test_decode_raw_rejects_junk(self):
        with pytest.raises(ProtocolError):
            protocol.decode_raw({"nope": 1})
        with pytest.raises(ProtocolError):
            protocol.decode_raw(None)


# ---------------------------------------------------------------------- #
class TestGoldenEquivalence:
    def test_evaluate_batch_matches_serial_backend(self, server):
        remote_env, local_env = _env(seed=3), _env(seed=3)
        remote = RemoteBackend(remote_env, server.address, timeout=10.0)
        serial = SerialBackend(local_env)
        placements = _placements(remote_env, 8, seed=1)
        try:
            got = remote.evaluate_batch(placements)
        finally:
            remote.close()
        want = serial.evaluate_batch(placements)
        assert [m.per_step_time for m in got] == [m.per_step_time for m in want]
        assert [m.valid for m in got] == [m.valid for m in want]
        # noise + clock charged from the *local* env, identically to serial
        assert remote_env.env_time == local_env.env_time
        assert remote_env.num_evaluations == local_env.num_evaluations

    def test_oom_raw_survives_the_wire(self):
        tiny = Topology.default_4gpu(num_gpus=2, gpu_memory_bytes=1 << 10)
        with MeasurementServer(
            _env(seed=0, topology=tiny), port=0, workers=1
        ) as srv:
            srv.start()
            remote_env, local_env = (
                _env(seed=5, topology=tiny),
                _env(seed=5, topology=tiny),
            )
            gpu = tiny.gpu_indices()[0]
            p = np.full(remote_env.graph.num_ops, gpu, dtype=np.int64)
            with RemoteBackend(remote_env, srv.address, timeout=10.0) as remote:
                (got,) = remote.evaluate_batch([p])
            (want,) = SerialBackend(local_env).evaluate_batch([p])
            assert not got.valid and not want.valid
            assert got.per_step_time == want.per_step_time

    def test_search_is_bit_for_bit_identical_to_local(self, server):
        def run(backend_for, policy=None):
            env = _env(seed=11)
            agent = PostAgent(env.graph, env.num_devices, num_groups=4, seed=11)
            config = SearchConfig(max_samples=12, minibatch_size=6)
            backend = backend_for(env)
            try:
                return PlacementSearch(
                    agent, env, "ppo", config, backend=backend, policy=policy
                ).run()
            finally:
                backend.close()

        # The remote run uses the resilient policy path (per-placement
        # evaluation + prepare_batch prefetch); the golden run is the plain
        # serial fast path.  Identical seeds must give identical results.
        remote = run(
            lambda env: RemoteBackend(env, server.address, timeout=10.0),
            policy=EvaluationPolicy(max_retries=2),
        )
        golden = run(SerialBackend)
        assert remote.best_time == golden.best_time
        assert remote.final_time == golden.final_time
        assert np.array_equal(remote.best_placement, golden.best_placement)
        assert remote.history.per_step_time == golden.history.per_step_time
        assert remote.history.env_time == golden.history.env_time
        assert remote.num_faults == 0

    def test_prepare_batch_prefetches_one_rpc(self, server):
        env = _env(seed=2)
        placements = _placements(env, 5, seed=4)
        with RemoteBackend(env, server.address, timeout=10.0) as remote:
            remote.prepare_batch(placements)
            assert remote.num_rpc_batches == 1
            for p in placements:
                remote.evaluate_batch([p])
            assert remote.num_prefetch_hits == len(placements)
            assert remote.num_rpc_batches == 1  # no extra round trips

    def test_duplicate_placements_fetched_once(self, server):
        env = _env(seed=2)
        p = _placements(env, 1, seed=8)[0]
        with RemoteBackend(env, server.address, timeout=10.0) as remote:
            measurements = remote.evaluate_batch([p, p, p])
            assert remote.num_requests == 1  # deduped client-side
        # still three *distinct* committed measurements (independent noise)
        assert len({m.per_step_time for m in measurements}) == 3


# ---------------------------------------------------------------------- #
class TestSharedCache:
    def test_concurrent_clients_share_the_memo_cache(self, server):
        placements = _placements(_env(), 6, seed=3)
        barrier = threading.Barrier(2)
        errors = []

        def client(seed):
            try:
                env = _env(seed=seed)
                with RemoteBackend(env, server.address, timeout=10.0) as remote:
                    barrier.wait(timeout=10.0)
                    remote.evaluate_batch(placements)
                    remote.evaluate_batch(placements)  # round 2: all hits
            except Exception as exc:  # surface into the main thread
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(s,)) for s in (1, 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        stats = server.stats()
        # 6 unique placements, 24 requests over two rounds per client.
        # Round-1 lookups may *race* (both clients miss the same placement
        # before either insert lands), so the only deterministic bounds
        # are: every round-2 request hits, and at least one client's
        # round-1 misses populated the shared table.
        assert stats["memo_hits"] >= 12.0
        assert 6.0 <= stats["memo_misses"] <= 12.0
        assert stats["memo_hits"] + stats["memo_misses"] == 24.0

    def test_stats_rpc_reports_cache_and_service_counters(self, server):
        env = _env(seed=1)
        with RemoteBackend(env, server.address, timeout=10.0) as remote:
            remote.evaluate_batch(_placements(env, 3, seed=0))
            stats = remote.remote_stats()
        assert stats["memo_misses"] == 3.0
        assert stats["memo_hits"] == 0.0
        assert stats["workers"] == 2.0
        assert stats["repro_service_connections_total"] >= 1.0
        assert stats["repro_service_requests_total"] >= 1.0


# ---------------------------------------------------------------------- #
class TestFaultTranslation:
    def test_connection_refused_is_a_crash_fault(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        env = _env()
        backend = RemoteBackend(env, f"127.0.0.1:{port}", timeout=2.0)
        with pytest.raises(EvaluationFault) as ei:
            backend.evaluate_batch(_placements(env, 1))
        assert ei.value.kind == "crash"
        assert env.num_evaluations == 0  # nothing committed

    def test_server_killed_mid_session_surfaces_as_fault(self, server):
        env = _env(seed=6)
        remote = RemoteBackend(env, server.address, timeout=5.0)
        remote.evaluate_batch(_placements(env, 2, seed=1))  # healthy first
        clock_before = env.env_time
        server.close()
        with pytest.raises(EvaluationFault) as ei:
            remote.evaluate_batch(_placements(env, 2, seed=2))
        assert ei.value.kind in ("crash", "straggler")
        # the half-finished batch committed nothing: clock untouched
        assert env.env_time == clock_before
        remote.close()

    def test_search_quarantines_when_server_dies(self, server):
        """A killed server must degrade the search, not hang or abort it."""
        env = _env(seed=13)
        agent = PostAgent(env.graph, env.num_devices, num_groups=4, seed=13)
        config = SearchConfig(max_samples=12, minibatch_size=6)
        backend = RemoteBackend(env, server.address, timeout=2.0)
        policy = EvaluationPolicy(max_retries=1, backoff_base=0.1)

        class Killer(SearchCallback):
            def __init__(self):
                self.fired = False

            def on_measurement(self, engine, sample, measurement):
                if not self.fired and engine.num_samples >= 3:
                    self.fired = True
                    server.close()

        search = PlacementSearch(
            agent, env, "ppo", config,
            backend=backend, policy=policy, callbacks=[Killer()],
        )
        try:
            result = search.run()
        finally:
            backend.close()
        assert result.num_quarantined > 0
        assert result.num_faults == result.num_retries + result.num_quarantined
        # every sample after the kill was quarantined, none hung the search
        assert result.num_samples == config.max_samples


# ---------------------------------------------------------------------- #
class TestHandshake:
    def test_protocol_version_mismatch_rejected(self, server, monkeypatch):
        # A client whose whole version *range* is above the server's must
        # be refused — negotiation only bridges overlapping ranges.
        from repro.service import client as client_mod

        monkeypatch.setattr(client_mod, "PROTOCOL_VERSION", 999)
        monkeypatch.setattr(client_mod, "MIN_PROTOCOL_VERSION", 999)
        with pytest.raises(HandshakeError, match="version mismatch"):
            RemoteBackend(_env(), server.address, timeout=5.0).evaluate_batch(
                _placements(_env(), 1)
            )

    def test_version_ranges_negotiate_down(self, server, monkeypatch):
        # A future client still speaking v1..v999 lands on the server's max.
        from repro.service import client as client_mod
        from repro.service.protocol import PROTOCOL_VERSION as SERVER_MAX

        monkeypatch.setattr(client_mod, "PROTOCOL_VERSION", 999)
        env = _env()
        with RemoteBackend(env, server.address, timeout=5.0) as remote:
            conn = remote._borrow()
            try:
                assert conn.version == SERVER_MAX
                assert isinstance(conn.session, str)
            finally:
                conn.close()

    def test_fingerprint_mismatch_rejected(self, server):
        other_graph = build_random_layered(num_layers=6, width=5, seed=8)
        env = _env(graph=other_graph)
        backend = RemoteBackend(env, server.address, timeout=5.0)
        with pytest.raises(HandshakeError, match="fingerprint mismatch"):
            backend.evaluate_batch(_placements(env, 1))

    def test_handshake_error_is_not_an_evaluation_fault(self):
        # misconfiguration must bypass the retry policy entirely
        assert not issubclass(HandshakeError, EvaluationFault)

    def test_first_message_must_be_hello(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
        try:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            protocol.write_message(wfile, {"op": "stats"})
            reply = protocol.read_message(rfile)
            assert reply == {
                "ok": False,
                "error": "first message must be 'hello'",
                "kind": "protocol",
            }
            assert protocol.read_message(rfile) is None  # server hung up
        finally:
            sock.close()

    def test_unknown_op_keeps_session_alive(self, server):
        env = _env()
        with RemoteBackend(env, server.address, timeout=5.0) as remote:
            conn = remote._borrow()
            try:
                reply = conn.request({"op": "frobnicate"})
                assert reply["ok"] is False and "unknown op" in reply["error"]
                # the session survives a bad request
                assert conn.request({"op": "stats"})["ok"] is True
            finally:
                conn.close()


# ---------------------------------------------------------------------- #
class TestLifecycle:
    def test_shutdown_rpc_stops_the_server(self, server):
        env = _env()
        remote = RemoteBackend(env, server.address, timeout=5.0)
        remote.shutdown_server()
        remote.close()
        # the listener is gone: fresh connections now fail as faults
        fresh = RemoteBackend(env, server.address, timeout=2.0)
        with pytest.raises(EvaluationFault):
            fresh.evaluate_batch(_placements(env, 1))

    def test_close_is_idempotent(self, server):
        server.close()
        server.close()

    def test_backend_refuses_use_after_close(self, server):
        env = _env()
        remote = RemoteBackend(env, server.address, timeout=5.0)
        remote.close()
        with pytest.raises(RuntimeError, match="closed"):
            remote.evaluate_batch(_placements(env, 1))

    def test_memo_warm_start(self, tmp_path, server):
        env = _env(seed=1)
        placements = _placements(env, 4, seed=9)
        with RemoteBackend(env, server.address, timeout=10.0) as remote:
            remote.evaluate_batch(placements)
        path = str(tmp_path / "memo.json")
        server.memo.save(path)
        server.close()
        with MeasurementServer(_env(seed=50), port=0, workers=1, memo_path=path) as warm:
            warm.start()
            env2 = _env(seed=2)
            with RemoteBackend(env2, warm.address, timeout=10.0) as remote:
                remote.evaluate_batch(placements)
            assert warm.stats()["memo_hits"] == 4.0


# ---------------------------------------------------------------------- #
@pytest.mark.slow
class TestSoak:
    def test_many_concurrent_searches_stay_deterministic(self):
        """Four concurrent remote searches == four local serial searches."""
        with MeasurementServer(_env(seed=0), port=0, workers=4) as server:
            server.start()
            results = {}

            def run_remote(seed):
                env = _env(seed=seed)
                agent = PostAgent(env.graph, env.num_devices, num_groups=4, seed=seed)
                config = SearchConfig(max_samples=24, minibatch_size=8)
                with RemoteBackend(env, server.address, timeout=30.0) as backend:
                    results[seed] = PlacementSearch(
                        agent, env, "ppo", config,
                        backend=backend, policy=EvaluationPolicy(max_retries=2),
                    ).run()

            seeds = (0, 1, 2, 3)
            threads = [threading.Thread(target=run_remote, args=(s,)) for s in seeds]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert set(results) == set(seeds)
            stats = server.stats()
            assert stats["memo_hits"] > 0  # the fleet actually amortised work

        for seed in seeds:
            env = _env(seed=seed)
            agent = PostAgent(env.graph, env.num_devices, num_groups=4, seed=seed)
            config = SearchConfig(max_samples=24, minibatch_size=8)
            golden = PlacementSearch(
                agent, env, "ppo", config, backend=SerialBackend(env)
            ).run()
            assert results[seed].best_time == golden.best_time
            assert results[seed].history.per_step_time == golden.history.per_step_time
