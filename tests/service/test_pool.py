"""Tests for the supervised worker pool behind the measurement server."""

import threading

import pytest

from repro.service.pool import PoolBusy, WorkerPool


@pytest.fixture
def pool():
    p = WorkerPool(2, max_backlog=4, name_prefix="test-pool")
    yield p
    p.shutdown()


class TestExecution:
    def test_submit_resolves_future(self, pool):
        assert pool.submit(lambda a, b: a + b, 2, 3).result(timeout=5) == 5

    def test_submit_many_preserves_order(self, pool):
        futures = pool.submit_many([(lambda i=i: i * i,) for i in range(4)])
        assert [f.result(timeout=5) for f in futures] == [0, 1, 4, 9]

    def test_exception_fails_only_its_future(self, pool):
        def boom():
            raise ValueError("task failed")

        bad = pool.submit(boom)
        good = pool.submit(lambda: 42)
        with pytest.raises(ValueError, match="task failed"):
            bad.result(timeout=5)
        assert good.result(timeout=5) == 42
        assert pool.alive_workers() == 2  # plain Exceptions never kill workers

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(1, max_backlog=0)


class TestSupervision:
    def test_worker_killed_by_base_exception_is_replaced(self, pool):
        def die():
            raise SystemExit("worker down")

        victims = [pool.submit(die) for _ in range(2)]
        for victim in victims:
            with pytest.raises(SystemExit):
                victim.result(timeout=5)
        # Each dying worker retires itself and spawns a successor, so the
        # pool keeps executing even though every original thread died.
        assert pool.submit(lambda: "alive").result(timeout=5) == "alive"
        assert pool.workers_replaced == 2
        assert pool.alive_workers() == 2

    def test_heal_is_idempotent_on_a_healthy_pool(self, pool):
        victim = pool.submit(lambda: (_ for _ in ()).throw(SystemExit()))
        with pytest.raises(SystemExit):
            victim.result(timeout=5)
        assert pool.submit(lambda: 1).result(timeout=5) == 1  # self-healed
        assert pool.heal() == 0  # nothing left for the backstop to replace
        assert pool.workers_replaced == 1


def _occupy_worker(pool):
    """Submit a task that holds the single worker until released.

    Returns ``(future, release_event)`` only once the task is *running*,
    so subsequent submissions deterministically land in the queue.
    """
    started = threading.Event()
    release = threading.Event()

    def blocker():
        started.set()
        release.wait(10)
        return True

    future = pool.submit(blocker)
    assert started.wait(5)
    return future, release


class TestBackpressure:
    def test_busy_when_backlog_full(self):
        pool = WorkerPool(1, max_backlog=2)
        blocker, release = _occupy_worker(pool)
        try:
            pool.submit_many([(lambda: None,), (lambda: None,)])  # fills queue
            with pytest.raises(PoolBusy, match="backlog is full"):
                pool.submit(lambda: None)
        finally:
            release.set()
            assert blocker.result(timeout=5) is True
            pool.shutdown()

    def test_submit_many_is_all_or_nothing(self):
        pool = WorkerPool(1, max_backlog=2)
        blocker, release = _occupy_worker(pool)
        try:
            pool.submit(lambda: None)  # one slot left
            with pytest.raises(PoolBusy):
                pool.submit_many([(lambda: 1,), (lambda: 2,)])
            assert pool.backlog() == 1  # the refused pair queued nothing
        finally:
            release.set()
            assert blocker.result(timeout=5) is True
            pool.shutdown()


class TestDrain:
    def test_drain_waits_for_inflight(self, pool):
        done = []
        gate = threading.Event()

        def task():
            gate.wait(10)
            done.append(True)

        pool.submit(task)
        threading.Timer(0.05, gate.set).start()
        assert pool.drain(timeout=10) is True
        assert done == [True]

    def test_drain_refuses_new_work(self, pool):
        assert pool.drain(timeout=5) is True
        with pytest.raises(PoolBusy, match="shutting down"):
            pool.submit(lambda: None)

    def test_drain_times_out_on_stuck_task(self):
        pool = WorkerPool(1, max_backlog=2)
        release = threading.Event()
        try:
            pool.submit(release.wait, 30)
            assert pool.drain(timeout=0.2) is False
        finally:
            release.set()
            pool.shutdown()
