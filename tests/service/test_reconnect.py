"""Session reconnect, replay and self-healing tests (protocol v2).

The properties under test, per DESIGN.md's failure-mode matrix:

* a client that loses its TCP connection mid-batch reconnects with seeded
  backoff, resumes its server-side session, and replays retained results —
  the batch completes with **zero duplicate simulations** (asserted
  against ``MeasurementServer.num_simulations``);
* the server answers explicit ``busy`` / ``deadline`` / ``draining``
  errors instead of hanging or queueing unboundedly, and the client
  translates each into the right :class:`EvaluationFault` kind;
* idle sessions are reaped, retained batches are bounded, and a stale
  batch id with different placements is never replayed (digest guard).
"""

import socket
import threading

import numpy as np
import pytest

from repro import MeasurementServer, PlacementEnvironment, RemoteBackend, SerialBackend
from repro.service import protocol
from repro.service.sessions import SessionRegistry
from repro.sim import EvaluationFault, Topology

from .test_service import _env, _graph, _placements


@pytest.fixture
def server():
    srv = MeasurementServer(_env(seed=99), port=0, workers=2).start()
    yield srv
    srv.close()


def _backend(server, **kwargs):
    kwargs.setdefault("timeout", 10.0)
    kwargs.setdefault("backoff_base", 0.0)  # keep tests instant
    return RemoteBackend(_env(seed=0), server.address, **kwargs)


class _RawClient:
    """A bare v2 protocol speaker for poking the server directly."""

    def __init__(self, server, fingerprint=None):
        host, port = server.address.rsplit(":", 1)
        self.sock = socket.create_connection((host, int(port)), timeout=10.0)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")
        reply = self.request({
            "op": "hello",
            "version": protocol.PROTOCOL_VERSION,
            "min_version": protocol.MIN_PROTOCOL_VERSION,
            "fingerprint": fingerprint or server.fingerprint,
        })
        assert reply["ok"], reply
        self.session = reply["session"]

    def send(self, message):
        protocol.write_message(self.wfile, message)

    def recv(self):
        return protocol.read_message(self.rfile)

    def request(self, message):
        self.send(message)
        return self.recv()

    def submit_batch(self, placements, batch_id):
        reply = self.request({
            "op": "evaluate_batch",
            "placements": protocol.encode_placements(placements),
            "batch": batch_id,
        })
        assert reply["ok"], reply
        return [self.recv() for _ in placements]

    def close(self):
        self.sock.close()


# ---------------------------------------------------------------------- #
class TestSessionOps:
    def test_ping_reports_serving_then_draining(self, server):
        backend = _backend(server)
        try:
            assert backend.ping() == "serving"
            server.draining.set()
            assert backend.ping() == "draining"
        finally:
            backend.close()

    def test_resume_unknown_session_is_a_session_error(self, server):
        client = _RawClient(server)
        try:
            reply = client.request({"op": "resume", "session": "s999"})
            assert not reply["ok"]
            assert reply["kind"] == "session"
        finally:
            client.close()

    def test_resume_reattaches_another_connections_session(self, server):
        first = _RawClient(server)
        second = _RawClient(server)
        try:
            assert first.session != second.session
            reply = second.request({"op": "resume", "session": first.session})
            assert reply["ok"] and reply["session"] == first.session
            assert reply["retained"] == []
        finally:
            first.close()
            second.close()


class TestReplay:
    def test_same_batch_id_replays_without_resimulating(self, server):
        env = _env(seed=99)
        placements = _placements(env, 3, seed=1)
        client = _RawClient(server)
        try:
            results = client.submit_batch(placements, batch_id=0)
            assert all(r["ok"] and "raw" in r for r in results)
            baseline = server.num_simulations
            assert baseline == 3

            replayed = client.submit_batch(placements, batch_id=0)
            assert server.num_simulations == baseline  # zero duplicate work
            assert all(r.get("replayed") for r in replayed)
            by_ticket = lambda rs: {r["ticket"]: r["raw"] for r in rs}
            assert by_ticket(replayed) == by_ticket(results)
        finally:
            client.close()

    def test_replay_after_connection_drop_mid_stream(self, server):
        env = _env(seed=99)
        placements = _placements(env, 4, seed=2)
        first = _RawClient(server)
        # Submit, read the ticket reply, then vanish before any result.
        reply = first.request({
            "op": "evaluate_batch",
            "placements": protocol.encode_placements(placements),
            "batch": 7,
        })
        assert reply["ok"]
        session = first.session
        first.close()

        # Worker futures finish into the retained record regardless.
        done = threading.Event()
        for _ in range(200):
            if server.num_simulations >= 4:
                done.set()
                break
            threading.Event().wait(0.05)
        assert done.is_set()
        baseline = server.num_simulations

        second = _RawClient(server)
        try:
            resumed = second.request({"op": "resume", "session": session})
            assert resumed["ok"] and 7 in resumed["retained"]
            results = second.submit_batch(placements, batch_id=7)
            assert {r["ticket"] for r in results} == {0, 1, 2, 3}
            assert all(r["ok"] and "raw" in r for r in results)
            assert server.num_simulations == baseline  # nothing re-ran
        finally:
            second.close()

    def test_stale_batch_id_with_different_placements_is_not_replayed(self, server):
        env = _env(seed=99)
        client = _RawClient(server)
        try:
            client.submit_batch(_placements(env, 2, seed=3), batch_id=1)
            baseline = server.num_simulations
            # Same id, different content: the digest guard must re-evaluate.
            fresh = client.submit_batch(_placements(env, 2, seed=4), batch_id=1)
            assert not any(r.get("replayed") for r in fresh)
            assert server.num_simulations == baseline + 2
        finally:
            client.close()


# ---------------------------------------------------------------------- #
class TestBackendReconnect:
    def test_batch_survives_connection_drop_with_zero_duplicates(self, server):
        """The acceptance property: a RemoteBackend batch that loses TCP
        mid-flight completes after reconnecting, results identical to a
        serial run, with zero duplicate server-side simulations."""
        sleeps = []
        backend = _backend(
            server, reconnect_attempts=3,
            backoff_base=0.001, backoff_jitter=0.0, sleep=sleeps.append,
        )
        env = _env(seed=0)
        placements = _placements(env, 5, seed=5)
        try:
            conn = backend._borrow()  # handshakes; adopts the session
            original_recv = conn.recv
            state = {"calls": 0}

            def dropping_recv():
                state["calls"] += 1
                if state["calls"] == 2:  # tickets arrived; first result line
                    conn.sock.close()
                    raise ConnectionResetError("injected mid-stream drop")
                return original_recv()

            conn.recv = dropping_recv
            backend._release(conn)

            measurements = backend.evaluate_batch(placements)

            serial_env = _env(seed=0)
            expected = SerialBackend(serial_env).evaluate_batch(placements)
            assert [m.per_step_time for m in measurements] == [
                m.per_step_time for m in expected
            ]
            assert [m.env_time_charged for m in measurements] == [
                m.env_time_charged for m in expected
            ]
            assert backend.environment.env_time == serial_env.env_time
            assert server.num_simulations == 5  # at-most-once: no re-runs
            assert backend.num_session_resumes == 1
            assert backend.num_replayed >= 1
            assert sleeps == pytest.approx([0.001])  # one backoff, then re-dial
        finally:
            backend.close()

    def test_initial_dial_failure_faults_without_backoff(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        sleeps = []
        backend = RemoteBackend(
            _env(seed=0), f"127.0.0.1:{port}",
            timeout=5.0, reconnect_attempts=3, sleep=sleeps.append,
        )
        try:
            with pytest.raises(EvaluationFault) as excinfo:
                backend.evaluate_batch(_placements(_env(seed=0), 1))
            assert excinfo.value.kind == "crash"
            assert sleeps == []  # never-reachable servers skip the retry loop
        finally:
            backend.close()

    def test_reconnect_gives_up_after_attempts_with_growing_backoff(self):
        server = MeasurementServer(_env(seed=99), port=0, workers=1).start()
        sleeps = []
        backend = RemoteBackend(
            _env(seed=0), server.address,
            timeout=5.0, reconnect_attempts=3,
            backoff_base=0.001, backoff_factor=2.0, backoff_jitter=0.0,
            sleep=sleeps.append,
        )
        try:
            backend._release(backend._borrow())  # establish a pooled conn
            server.close()  # server dies; the pooled socket is now dead
            with pytest.raises(EvaluationFault) as excinfo:
                backend.evaluate_batch(_placements(_env(seed=0), 1))
            assert excinfo.value.kind == "crash"
            assert sleeps == pytest.approx([0.001, 0.002, 0.004])
        finally:
            backend.close()
            server.close()


# ---------------------------------------------------------------------- #
class TestBackpressureAndDeadlines:
    def _occupy_workers(self, server, count):
        """Park blocker tasks on the server's pool; returns the release."""
        release = threading.Event()
        started = [threading.Event() for _ in range(count)]

        def blocker(start):
            start.set()
            release.wait(30)

        for start in started:
            server._pool.submit(blocker, start)
        for start in started:
            assert start.wait(5)
        return release

    def test_busy_server_answers_busy_and_client_defers(self):
        server = MeasurementServer(
            _env(seed=99), port=0, workers=1, max_backlog=1
        ).start()
        backend = _backend(server)
        release = self._occupy_workers(server, 1)
        try:
            server._pool.submit(lambda: None)  # fill the 1-slot backlog
            with pytest.raises(EvaluationFault) as excinfo:
                backend.evaluate_batch(_placements(_env(seed=0), 1, seed=6))
            assert excinfo.value.kind == "straggler"
            assert "deferred" in str(excinfo.value)
        finally:
            release.set()
            backend.close()
            server.close()

    def test_request_deadline_answers_deadline_errors(self):
        server = MeasurementServer(
            _env(seed=99), port=0, workers=1, request_deadline=0.2
        ).start()
        backend = _backend(server)
        release = self._occupy_workers(server, 1)
        try:
            with pytest.raises(EvaluationFault) as excinfo:
                backend.evaluate_batch(_placements(_env(seed=0), 1, seed=7))
            assert excinfo.value.kind == "straggler"
        finally:
            release.set()
            backend.close()
            server.close()

    def test_draining_server_refuses_new_batches(self, server):
        backend = _backend(server)
        try:
            server.draining.set()
            with pytest.raises(EvaluationFault) as excinfo:
                backend.evaluate_batch(_placements(_env(seed=0), 1, seed=8))
            assert excinfo.value.kind == "crash"
            assert "draining" in str(excinfo.value)
        finally:
            backend.close()

    def test_drain_finishes_inflight_then_closes(self, server):
        backend = _backend(server)
        placements = _placements(_env(seed=0), 2, seed=9)
        results = backend.evaluate_batch(placements)  # warm the memo
        assert len(results) == 2
        backend.close()
        server.drain(timeout=10.0)
        with pytest.raises(EvaluationFault):
            _backend(server).evaluate_batch(placements)  # server is gone


# ---------------------------------------------------------------------- #
class TestSessionHousekeeping:
    def test_idle_sessions_are_reaped(self):
        registry = SessionRegistry(retention=2, idle_timeout=10.0)
        stale = registry.create(now=0.0)
        fresh = registry.create(now=0.0)
        fresh.touch(9.0)
        assert registry.reap(now=11.0) == [stale.id]
        assert registry.resume(stale.id, now=11.0) is None
        assert registry.resume(fresh.id, now=11.0) is fresh
        assert registry.num_reaped == 1

    def test_retention_bounds_batch_records(self):
        registry = SessionRegistry(retention=2, idle_timeout=10.0)
        session = registry.create(now=0.0)
        for batch_id in range(4):
            session.get_or_add(batch_id, 1, f"digest{batch_id}")
        assert session.retained_batches() == [2, 3]

    def test_server_reaps_via_housekeeping_clock(self):
        # A settable clock: the housekeeping thread reads it too, so it
        # must be stable between explicit advances.
        now = {"t": 0.0}
        server = MeasurementServer(
            _env(seed=99), port=0, workers=1,
            session_idle_timeout=5.0, clock=lambda: now["t"],
        )
        try:
            server.sessions.create(server.clock())  # at t=0
            assert len(server.sessions) == 1
            now["t"] = 1000.0
            server.sessions.reap(server.clock())  # what housekeeping runs
            assert len(server.sessions) == 0
        finally:
            server.close()

    def test_registry_validates_parameters(self):
        with pytest.raises(ValueError):
            SessionRegistry(retention=0)
        with pytest.raises(ValueError):
            SessionRegistry(idle_timeout=0.0)


# ---------------------------------------------------------------------- #
class TestMultiTenantRestart:
    """Durable spaces make a server *restart* replay-transparent: the new
    process lazily reloads the space from ``spaces_dir`` — sessions, memo
    and retained batches included — so a resumed client replays instead of
    re-simulating (the at-most-once guarantee, now across processes)."""

    def _spec(self):
        from repro.service.tenancy import SpaceSpec

        return SpaceSpec.from_environment(_env(seed=99))

    def test_restart_replays_batch_with_zero_duplicate_simulations(self, tmp_path):
        spec = self._spec()
        first = MeasurementServer(
            multi_tenant=True, spaces_dir=str(tmp_path),
            space_specs=[spec], port=0, workers=2,
        ).start()
        port = first.port
        placements = _placements(_env(seed=99), 3, seed=11)
        client = _RawClient(first)
        results = client.submit_batch(placements, batch_id=5)
        assert all(r["ok"] for r in results)
        assert first.num_simulations == 3
        session = client.session
        client.close()
        first.close()  # batch completion persisted the space's state

        second = MeasurementServer(
            multi_tenant=True, spaces_dir=str(tmp_path), port=port, workers=2,
        ).start()
        try:
            # hello with the persisted fingerprint lazily loads the space
            reattached = _RawClient(second, fingerprint=spec.fingerprint)
            try:
                resumed = reattached.request({"op": "resume", "session": session})
                assert resumed["ok"], resumed
                assert 5 in resumed["retained"]
                replayed = reattached.submit_batch(placements, batch_id=5)
                assert all(r.get("replayed") for r in replayed)
                assert second.num_simulations == 0  # nothing re-ran
                by_ticket = lambda rs: {r["ticket"]: r["raw"] for r in rs}
                assert by_ticket(replayed) == by_ticket(results)
            finally:
                reattached.close()
        finally:
            second.close()

    def test_backend_rides_out_a_durable_restart_via_the_memo(self, tmp_path):
        spec = self._spec()
        first = MeasurementServer(
            multi_tenant=True, spaces_dir=str(tmp_path),
            space_specs=[spec], port=0, workers=2,
        ).start()
        port = first.port
        env = _env(seed=0)
        placements = _placements(env, 3, seed=12)
        backend = RemoteBackend(
            env, first.address, timeout=10.0,
            reconnect_attempts=4, backoff_base=0.01, backoff_jitter=0.0,
        )
        serial = SerialBackend(_env(seed=0))
        try:
            got_rounds = [backend.evaluate_batch(placements)]
            first.close()
            second = MeasurementServer(
                multi_tenant=True, spaces_dir=str(tmp_path),
                port=port, workers=2,
            ).start()
            try:
                got_rounds.append(backend.evaluate_batch(placements))
                # the client-side commit RNG advances per round, so the
                # golden is a serial backend run through the same rounds
                want_rounds = [serial.evaluate_batch(placements) for _ in range(2)]
                for got, want in zip(got_rounds, want_rounds):
                    assert [m.per_step_time for m in got] == [
                        m.per_step_time for m in want
                    ]
                assert second.num_simulations == 0  # served from durable memo
                assert backend.num_reconnects >= 2
            finally:
                second.close()
        finally:
            backend.close()
