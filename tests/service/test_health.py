"""Health tier: probe-driven ring membership and the warm standby mirror.

Everything here runs the deterministic single-step entry points
(``check_once`` / ``poll_once``) with injectable probes — no background
threads, no sleeps — except the two tests that pin ``default_probe``
against a real server.
"""

import pytest

from repro import MeasurementServer, RemoteBackend
from repro.service.health import HealthMonitor, StandbyMirror, default_probe
from repro.service.protocol import ProtocolError
from repro.service.router import RouterServer, fetch_router_stats
from repro.service.tenancy import SpaceSpec

from .test_multitenant import _tenant_env
from .test_service import _placements

BACKENDS = ["10.0.0.1:7000", "10.0.0.2:7000"]


class _ScriptedProbe:
    """Probe returning a per-address scripted healthy/unhealthy sequence
    (last entry repeats forever)."""

    def __init__(self, script):
        self.script = {addr: list(seq) for addr, seq in script.items()}
        self.calls = []

    def __call__(self, address, timeout):
        self.calls.append(address)
        seq = self.script[address]
        return seq.pop(0) if len(seq) > 1 else seq[0]


@pytest.fixture
def router():
    router = RouterServer(BACKENDS)
    yield router
    router.close()


class TestHealthMonitor:
    def test_validation(self, router):
        with pytest.raises(ValueError, match="positive"):
            HealthMonitor(router, interval=0.0)
        with pytest.raises(ValueError, match="positive"):
            HealthMonitor(router, probe_timeout=0.0)
        with pytest.raises(ValueError, match="thresholds"):
            HealthMonitor(router, fail_threshold=0)
        with pytest.raises(ValueError, match="thresholds"):
            HealthMonitor(router, recover_threshold=0)
        with pytest.raises(ValueError, match="jitter"):
            HealthMonitor(router, jitter=-0.1)

    def test_state_machine_full_cycle(self, router):
        """up → suspect → down on consecutive failures, down → up on
        recover_threshold successes; the healthy backend never moves."""
        probe = _ScriptedProbe({
            BACKENDS[0]: [False, False, False, True, True],
            BACKENDS[1]: [True],
        })
        monitor = HealthMonitor(
            router, probe=probe, fail_threshold=3, recover_threshold=2
        )
        assert monitor.check_once() == [(BACKENDS[0], "up", "suspect")]
        assert monitor.check_once() == []  # 2nd failure: still suspect
        assert monitor.check_once() == [(BACKENDS[0], "suspect", "down")]
        assert monitor.check_once() == []  # 1st success: still down
        assert monitor.check_once() == [(BACKENDS[0], "down", "up")]
        assert router.ring.state(BACKENDS[0]) == "up"
        assert router.ring.state(BACKENDS[1]) == "up"

    def test_success_resets_failure_streak(self, router):
        probe = _ScriptedProbe({
            BACKENDS[0]: [False, True, False, False, False],
            BACKENDS[1]: [True],
        })
        monitor = HealthMonitor(router, probe=probe, fail_threshold=3)
        monitor.check_once()  # up -> suspect
        monitor.check_once()  # success: back up, streak reset
        assert router.ring.state(BACKENDS[0]) == "up"
        monitor.check_once()  # up -> suspect (streak restarted at 1)
        monitor.check_once()
        assert router.ring.state(BACKENDS[0]) == "suspect"
        monitor.check_once()
        assert router.ring.state(BACKENDS[0]) == "down"

    def test_transitions_counted_and_hook_fired(self, router):
        seen = []
        probe = _ScriptedProbe({
            BACKENDS[0]: [False, False, True],
            BACKENDS[1]: [True],
        })
        monitor = HealthMonitor(
            router,
            probe=probe,
            fail_threshold=2,
            recover_threshold=1,
            on_membership=lambda *event: seen.append(event),
        )
        for _ in range(3):
            monitor.check_once()
        assert seen == [
            (BACKENDS[0], "up", "suspect"),
            (BACKENDS[0], "suspect", "down"),
            (BACKENDS[0], "down", "up"),
        ]
        stats = router.stats()
        assert stats["transitions[up->suspect]"] == 1.0
        assert stats["transitions[suspect->down]"] == 1.0
        assert stats["transitions[down->up]"] == 1.0

    def test_down_backend_is_routed_around(self, router):
        probe = _ScriptedProbe({BACKENDS[0]: [False], BACKENDS[1]: [True]})
        monitor = HealthMonitor(router, probe=probe, fail_threshold=2)
        monitor.check_once()
        monitor.check_once()
        assert router.ring.state(BACKENDS[0]) == "down"
        for key in (f"fp{i}" for i in range(100)):
            assert router.ring.lookup(key) == BACKENDS[1]

    def test_suspect_backend_still_takes_traffic(self, router):
        probe = _ScriptedProbe({BACKENDS[0]: [False], BACKENDS[1]: [True]})
        HealthMonitor(router, probe=probe, fail_threshold=3).check_once()
        assert router.ring.state(BACKENDS[0]) == "suspect"
        owners = {router.ring.lookup(f"fp{i}") for i in range(100)}
        assert owners == set(BACKENDS)

    def test_background_loop_probes_and_stops(self, router):
        probe = _ScriptedProbe({BACKENDS[0]: [True], BACKENDS[1]: [True]})
        with HealthMonitor(router, interval=0.01, probe=probe).start() as monitor:
            deadline = 200
            while not probe.calls and deadline:
                deadline -= 1
                monitor._stop.wait(0.01)
        assert probe.calls
        with pytest.raises(RuntimeError, match="already started"):
            HealthMonitor(router, probe=probe).start().start()


class TestDefaultProbe:
    def test_serving_draining_and_dead(self):
        server = MeasurementServer(multi_tenant=True, port=0, workers=2).start()
        address = server.address
        try:
            assert default_probe(address, timeout=5.0) is True
            # a draining server still answers ping but is not healthy
            server.draining.set()
            assert default_probe(address, timeout=5.0) is False
        finally:
            server.close()
        # a closed server fails the probe instead of raising
        assert default_probe(address, timeout=1.0) is False


class TestMonitorEndToEnd:
    def test_monitor_reroutes_clients_off_a_dead_backend(self):
        """Kill one of two backends; after the monitor marks it down, a
        new client dials straight to the survivor (zero failovers)."""
        servers = [
            MeasurementServer(multi_tenant=True, port=0, workers=2).start()
            for _ in range(2)
        ]
        router = RouterServer([s.address for s in servers]).start()
        monitor = HealthMonitor(router, fail_threshold=2, probe_timeout=1.0)
        try:
            env = _tenant_env(graph_seed=31)
            fingerprint = SpaceSpec.from_environment(env).fingerprint
            victim_address = router.ring.lookup(fingerprint)
            victim = next(s for s in servers if s.address == victim_address)
            victim.close()
            while router.ring.state(victim_address) != "down":
                monitor.check_once()
            backend = RemoteBackend(env, router.address, offer_space=True, timeout=10.0)
            try:
                results = backend.evaluate_batch(_placements(env, 2, seed=1))
            finally:
                backend.close()
            assert len(results) == 2
            # routed around, not failed over: the dead backend was never dialed
            assert fetch_router_stats(router.address)["failovers"] == 0.0
        finally:
            monitor.close()
            router.close()
            for server in servers:
                server.close()


class TestStandbyMirror:
    def _standby(self, **kwargs):
        return RouterServer([BACKENDS[0]]), kwargs

    def test_validation(self):
        standby = RouterServer([BACKENDS[0]])
        with pytest.raises(ValueError, match="positive"):
            StandbyMirror(standby, "p:1", interval=0.0)
        with pytest.raises(ValueError, match="takeover_failures"):
            StandbyMirror(standby, "p:1", takeover_failures=0)

    def test_poll_mirrors_backends_and_states(self):
        standby = RouterServer([BACKENDS[0]])
        answer = {"backends": list(BACKENDS), "states": {BACKENDS[1]: "suspect"}}
        mirror = StandbyMirror(standby, "primary:1", fetch=lambda *a, **k: answer)
        assert mirror.poll_once() is True
        assert standby.backends == BACKENDS
        assert standby.ring.state(BACKENDS[1]) == "suspect"
        # mirroring never migrates — the primary already did
        assert standby.stats()["migrations"] == 0.0

    def test_garbled_answer_never_wipes_the_ring(self):
        standby = RouterServer(BACKENDS)
        mirror = StandbyMirror(
            standby, "primary:1", fetch=lambda *a, **k: {"backends": []}
        )
        assert mirror.poll_once() is True
        assert standby.backends == BACKENDS

    def test_takeover_after_consecutive_failures(self):
        standby = RouterServer([BACKENDS[0]])
        promoted = []

        def dead_fetch(*args, **kwargs):
            raise ProtocolError("primary is gone")

        mirror = StandbyMirror(
            standby,
            "primary:1",
            takeover_failures=3,
            fetch=dead_fetch,
            on_takeover=promoted.append,
        )
        assert mirror.poll_once() is False
        assert mirror.poll_once() is False
        assert not mirror.promoted
        assert mirror.poll_once() is False
        assert mirror.promoted
        assert promoted == [mirror]
        assert standby.stats()["standby_takeovers"] == 1.0
        # promotion is terminal and idempotent
        mirror.promote()
        assert standby.stats()["standby_takeovers"] == 1.0
        assert mirror.poll_once() is False

    def test_success_resets_failure_streak(self):
        standby = RouterServer([BACKENDS[0]])
        answers = [OSError("blip"), {"backends": BACKENDS, "states": {}},
                   OSError("blip"), OSError("blip")]

        def flaky_fetch(*args, **kwargs):
            answer = answers.pop(0)
            if isinstance(answer, Exception):
                raise answer
            return answer

        mirror = StandbyMirror(standby, "primary:1", takeover_failures=3,
                               fetch=flaky_fetch)
        mirror.poll_once()
        mirror.poll_once()  # success resets the streak
        mirror.poll_once()
        mirror.poll_once()
        assert not mirror.promoted

    def test_mirror_against_a_live_primary(self):
        """End-to-end: the standby tracks the primary's membership over
        the real admin plane, then promotes when the primary dies."""
        primary = RouterServer(BACKENDS).start()
        standby = RouterServer([BACKENDS[0]])
        mirror = StandbyMirror(standby, primary.address, takeover_failures=1)
        try:
            primary.join("10.0.0.3:7000")
            primary.set_backend_state(BACKENDS[1], "down")
            assert mirror.poll_once() is True
            assert standby.backends == primary.backends
            assert standby.ring.state(BACKENDS[1]) == "down"
            primary.close()
            assert mirror.poll_once() is False
            assert mirror.promoted
        finally:
            mirror.close()
            primary.close()
