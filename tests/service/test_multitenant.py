"""Multi-tenant server behaviour: adoption, codes, equivalence, metrics."""

import socket
import threading

import numpy as np
import pytest

from repro import MeasurementServer, PlacementEnvironment, RemoteBackend, SerialBackend
from repro.graph.models.random_graphs import build_random_layered
from repro.service import protocol
from repro.service.protocol import HandshakeError
from repro.service.tenancy import SpaceSpec
from repro.sim import Topology

from .test_service import _env, _placements


def _tenant_env(seed=0, graph_seed=11):
    graph = build_random_layered(num_layers=4, width=4, seed=graph_seed)
    return PlacementEnvironment(
        graph, Topology.default_4gpu(num_gpus=2), seed=seed
    )


@pytest.fixture
def server():
    srv = MeasurementServer(multi_tenant=True, port=0, workers=2).start()
    yield srv
    srv.close()


class TestSpaceAdoption:
    def test_offered_space_is_adopted(self, server):
        env = _tenant_env()
        backend = RemoteBackend(env, server.address, offer_space=True, timeout=10.0)
        try:
            results = backend.evaluate_batch(_placements(env, 4))
            assert len(results) == 4
            assert len(server.registry) == 1
        finally:
            backend.close()

    def test_unknown_fingerprint_without_offer_is_refused(self, server):
        env = _tenant_env()
        backend = RemoteBackend(env, server.address, timeout=10.0)
        with pytest.raises(HandshakeError, match="fingerprint mismatch") as exc:
            backend.evaluate_batch(_placements(env, 1))
        assert exc.value.code == "unknown_fingerprint"

    def test_single_tenant_server_refuses_foreign_space(self):
        srv = MeasurementServer(_env(seed=1), port=0, workers=2).start()
        try:
            env = _tenant_env()
            backend = RemoteBackend(env, srv.address, offer_space=True, timeout=10.0)
            with pytest.raises(HandshakeError) as exc:
                backend.evaluate_batch(_placements(env, 1))
            assert exc.value.code == "unknown_fingerprint"
        finally:
            srv.close()

    def test_many_tenants_coexist_with_isolated_memos(self, server):
        envs = [_tenant_env(graph_seed=s) for s in (21, 22, 23)]
        for env in envs:
            backend = RemoteBackend(env, server.address, offer_space=True, timeout=10.0)
            try:
                backend.evaluate_batch(_placements(env, 3))
                backend.evaluate_batch(_placements(env, 3))  # same → memo hits
            finally:
                backend.close()
        assert len(server.registry) == 3
        for space in server.registry.snapshot():
            stats = space.stats()
            assert stats["simulations"] == 3.0
            assert stats["memo_hits"] >= 3.0


class TestHandshakeCodes:
    def test_version_range_code(self, server):
        host, port = server.address.rsplit(":", 1)
        sock = socket.create_connection((host, int(port)), timeout=10.0)
        try:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            protocol.write_message(wfile, {
                "op": "hello", "version": 999, "min_version": 999,
                "fingerprint": "irrelevant",
            })
            reply = protocol.read_message(rfile)
            assert not reply["ok"]
            assert reply["code"] == "version_range"
            assert "version mismatch" in reply["error"]
        finally:
            sock.close()

    def test_space_loading_code(self, server, tmp_path):
        env = _tenant_env()
        fingerprint = SpaceSpec.from_environment(env).fingerprint
        server.registry.spaces_dir = str(tmp_path)
        (tmp_path / f"{fingerprint}.space.json").write_text("{}")
        server.registry._loading.add(fingerprint)
        try:
            backend = RemoteBackend(env, server.address, timeout=10.0)
            with pytest.raises(HandshakeError, match="loading") as exc:
                backend.evaluate_batch(_placements(env, 1))
            assert exc.value.code == "space_loading"
        finally:
            server.registry._loading.discard(fingerprint)

    def test_space_loading_is_retried_until_it_clears(self, server, tmp_path):
        """A transient ``space_loading`` refusal rides the reconnect
        budget: once the loader finishes, the handshake succeeds and the
        client reports how many retries it spent waiting."""
        env = _tenant_env()
        fingerprint = SpaceSpec.from_environment(env).fingerprint
        server.registry.spaces_dir = str(tmp_path)
        spec_file = tmp_path / f"{fingerprint}.space.json"
        spec_file.write_text("{}")
        server.registry._loading.add(fingerprint)

        def finish_loading():
            spec_file.unlink()
            server.registry._loading.discard(fingerprint)

        timer = threading.Timer(0.2, finish_loading)
        timer.start()
        try:
            backend = RemoteBackend(
                env, server.address, offer_space=True, timeout=10.0,
                reconnect_attempts=8, backoff_base=0.05, backoff_jitter=0.0,
            )
            try:
                results = backend.evaluate_batch(_placements(env, 2))
                assert len(results) == 2
                assert backend.stats()["loading_retries"] >= 1.0
            finally:
                backend.close()
        finally:
            timer.cancel()
            server.registry._loading.discard(fingerprint)

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_concurrent_same_placement_simulates_once(self, vectorized):
        """Singleflight: two clients racing batches that share placements
        must never simulate a placement twice — the memo dedupes landed
        results, the pending-simulation table dedupes in-flight ones.
        Whatever the interleaving, simulations == distinct placements."""
        server = MeasurementServer(
            multi_tenant=True, port=0, workers=2, vectorized=vectorized
        ).start()
        env = _tenant_env()
        common = _placements(env, 3, seed=9)
        batch_a = _placements(env, 6, seed=2) + common
        batch_b = common + _placements(env, 6, seed=3)
        distinct = {
            np.asarray(p, dtype=np.int64).tobytes()
            for p in batch_a + batch_b
        }
        backends = [
            RemoteBackend(_tenant_env(), server.address,
                          offer_space=True, timeout=10.0)
            for _ in range(2)
        ]
        results = [None, None]
        threads = [
            threading.Thread(
                target=lambda i=i, batch=batch: results.__setitem__(
                    i, backends[i].evaluate_batch(batch)
                )
            )
            for i, batch in enumerate((batch_a, batch_b))
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(results[0]) == len(batch_a)
            assert len(results[1]) == len(batch_b)
            assert server.num_simulations == len(distinct)
            assert server._pending_sims == {}
            stats = server.registry.snapshot()[0].stats()
            assert stats["memo_entries"] == float(len(distinct))
        finally:
            for backend in backends:
                backend.close()
            server.close()

    def test_code_is_none_from_refusals_without_one(self):
        # a pre-v3 refusal (no "code" field) must surface code=None
        err = HandshakeError("refused")
        assert err.code is None


class TestGoldenEquivalence:
    def test_multi_tenant_remote_matches_serial(self, server):
        """The acceptance bar: a search against a multi-tenant server is
        bit-for-bit the same trajectory as a local SerialBackend run."""
        remote_env, local_env = _tenant_env(seed=3), _tenant_env(seed=3)
        remote = RemoteBackend(remote_env, server.address, offer_space=True, timeout=10.0)
        serial = SerialBackend(local_env)
        try:
            placements = _placements(remote_env, 8, seed=1)
            got = remote.evaluate_batch(placements)
            want = serial.evaluate_batch(placements)
            for g, w in zip(got, want):
                assert g.per_step_time == w.per_step_time
                assert g.valid == w.valid
            assert remote_env.env_time == local_env.env_time
        finally:
            remote.close()

    def test_evaluate_one_matches_serial(self, server):
        remote_env, local_env = _tenant_env(seed=4), _tenant_env(seed=4)
        remote = RemoteBackend(remote_env, server.address, offer_space=True, timeout=10.0)
        serial = SerialBackend(local_env)
        try:
            placement = _placements(remote_env, 1, seed=2)[0]
            got = remote.evaluate_one(placement)
            want = serial.evaluate_batch([placement])[0]
            assert got.per_step_time == want.per_step_time
        finally:
            remote.close()


class TestSpacesOp:
    def test_remote_spaces_lists_tenants(self, server):
        envs = [_tenant_env(graph_seed=s) for s in (31, 32)]
        backends = [
            RemoteBackend(env, server.address, offer_space=True, timeout=10.0)
            for env in envs
        ]
        try:
            backends[0].evaluate_batch(_placements(envs[0], 2))
            backends[1].evaluate_batch(_placements(envs[1], 2))
            spaces = backends[0].remote_spaces()
            assert len(spaces) == 2
            fingerprints = {space["fingerprint"] for space in spaces}
            for env in envs:
                assert SpaceSpec.from_environment(env).fingerprint in fingerprints
        finally:
            for backend in backends:
                backend.close()


class TestPerSpaceMetrics:
    def test_metrics_have_space_labels_and_single_type_lines(self, server):
        envs = [_tenant_env(graph_seed=s) for s in (41, 42)]
        for env in envs:
            backend = RemoteBackend(env, server.address, offer_space=True, timeout=10.0)
            try:
                backend.evaluate_batch(_placements(env, 2))
            finally:
                backend.close()
        text = server.render_metrics()
        lines = text.splitlines()
        # exactly one TYPE declaration per metric family
        type_lines = [l for l in lines if l.startswith("# TYPE ")]
        families = [l.split()[2] for l in type_lines]
        assert len(families) == len(set(families))
        assert all("{" not in family for family in families)
        # per-space series carry a space label with the fingerprint prefix
        for env in envs:
            fp12 = SpaceSpec.from_environment(env).fingerprint[:12]
            assert f'repro_space_simulations_total{{space="{fp12}"}} 2' in text
            assert f'repro_space_sessions{{space="{fp12}"}}' in text
        assert "repro_service_spaces_hosted 2" in text

    def test_single_tenant_metrics_still_render(self):
        srv = MeasurementServer(_env(seed=5), port=0, workers=2).start()
        try:
            text = srv.render_metrics()
            assert "repro_service_spaces_hosted 1" in text
            assert 'repro_space_sessions{space="' in text
        finally:
            srv.close()
