"""Router tier: hash-ring determinism, routing, failover, admin stats,
live membership (join/leave), and space migration."""

import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MeasurementServer, RemoteBackend, SerialBackend
from repro.service import protocol
from repro.service.protocol import HandshakeError, ProtocolError
from repro.service.router import (
    RING_STATES,
    HashRing,
    RouterServer,
    fetch_router_membership,
    fetch_router_stats,
    router_admin,
)
from repro.service.tenancy import SpaceSpec

from .test_multitenant import _tenant_env
from .test_service import _env, _placements


@pytest.fixture
def fleet():
    servers = [
        MeasurementServer(multi_tenant=True, port=0, workers=2).start()
        for _ in range(2)
    ]
    router = RouterServer([s.address for s in servers]).start()
    yield servers, router
    router.close()
    for server in servers:
        server.close()


def _dead_address():
    """A host:port nothing listens on (reserved then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


class TestHashRing:
    BACKENDS = ["10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"]

    def test_lookup_is_deterministic_across_instances(self):
        a, b = HashRing(self.BACKENDS), HashRing(self.BACKENDS)
        for key in (f"fp{i}" for i in range(200)):
            assert a.lookup(key) == b.lookup(key)

    def test_ordered_walk_visits_every_backend_once(self):
        ring = HashRing(self.BACKENDS)
        walk = ring.ordered("some-fingerprint")
        assert sorted(walk) == sorted(self.BACKENDS)
        assert walk[0] == ring.lookup("some-fingerprint")

    def test_keys_spread_across_backends(self):
        ring = HashRing(self.BACKENDS)
        owners = {ring.lookup(f"fp{i}") for i in range(200)}
        assert owners == set(self.BACKENDS)

    def test_removing_a_backend_remaps_only_its_keys(self):
        full = HashRing(self.BACKENDS)
        smaller = HashRing(self.BACKENDS[:-1])
        keys = [f"fp{i}" for i in range(300)]
        moved = sum(
            1
            for k in keys
            if full.lookup(k) != smaller.lookup(k)
            and full.lookup(k) != self.BACKENDS[-1]
        )
        # consistent hashing: keys not owned by the removed backend stay put
        assert moved == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one backend"):
            HashRing([])
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a:1", "a:1"])
        with pytest.raises(ValueError, match="replicas"):
            HashRing(["a:1"], replicas=0)
        with pytest.raises(ValueError, match="host:port"):
            HashRing(["no-port"])


@st.composite
def _random_rings(draw):
    """A small ring with random membership and random health states."""
    ports = sorted(draw(st.sets(st.integers(0, 4000), min_size=1, max_size=8)))
    backends = [f"10.0.0.1:{7000 + p}" for p in ports]
    ring = HashRing(backends, replicas=8)
    for backend in backends:
        ring.set_state(backend, draw(st.sampled_from(RING_STATES)))
    return ring


class TestRingMembership:
    BACKENDS = TestHashRing.BACKENDS

    def test_incremental_add_matches_rebuilt_ring(self):
        ring = HashRing(self.BACKENDS[:2])
        ring.add_backend(self.BACKENDS[2])
        fresh = HashRing(self.BACKENDS)
        for key in (f"fp{i}" for i in range(300)):
            assert ring.lookup(key) == fresh.lookup(key)
            assert ring.ordered(key) == fresh.ordered(key)

    def test_incremental_remove_matches_rebuilt_ring(self):
        ring = HashRing(self.BACKENDS)
        ring.remove_backend(self.BACKENDS[1])
        fresh = HashRing([self.BACKENDS[0], self.BACKENDS[2]])
        for key in (f"fp{i}" for i in range(300)):
            assert ring.lookup(key) == fresh.lookup(key)

    def test_add_remaps_about_one_over_n(self):
        ring = HashRing(self.BACKENDS[:2])
        keys = [f"fp{i}" for i in range(400)]
        before = {k: ring.lookup(k) for k in keys}
        ring.add_backend(self.BACKENDS[2])
        moved = [k for k in keys if ring.lookup(k) != before[k]]
        # every moved key moved ONTO the new backend (nothing reshuffles
        # between the survivors), and roughly 1/3 of the keyspace moved
        assert all(ring.lookup(k) == self.BACKENDS[2] for k in moved)
        assert 0 < len(moved) < len(keys) // 2

    def test_membership_validation(self):
        ring = HashRing(self.BACKENDS)
        with pytest.raises(ValueError, match="already in the ring"):
            ring.add_backend(self.BACKENDS[0])
        with pytest.raises(ValueError, match="host:port"):
            ring.add_backend("no-port")
        with pytest.raises(ValueError, match="unknown backend"):
            ring.remove_backend("10.9.9.9:1")
        small = HashRing(["a:1"])
        with pytest.raises(ValueError, match="last backend"):
            small.remove_backend("a:1")

    def test_down_backend_is_routed_around(self):
        ring = HashRing(self.BACKENDS)
        keys = [f"fp{i}" for i in range(200)]
        victim = ring.lookup(keys[0])
        assert ring.set_state(victim, "down") == "up"
        assert ring.state(victim) == "down"
        for key in keys:
            assert ring.lookup(key) != victim
        # suspect still takes traffic; recovery restores ownership
        assert ring.set_state(victim, "up") == "down"
        assert ring.lookup(keys[0]) == victim

    def test_state_validation(self):
        ring = HashRing(self.BACKENDS)
        with pytest.raises(ValueError, match="unknown ring state"):
            ring.set_state(self.BACKENDS[0], "zombie")
        with pytest.raises(ValueError, match="unknown backend"):
            ring.set_state("10.9.9.9:1", "down")

    @settings(max_examples=200, deadline=None)
    @given(ring=_random_rings(), key=st.text(min_size=1, max_size=32))
    def test_lookup_is_ordered_head(self, ring, key):
        """The satellite property: for any ring and any key, the failover
        walk's head IS the lookup answer, and the walk visits every
        backend exactly once (virtual-node collisions deduplicated)."""
        walk = ring.ordered(key)
        assert walk[0] == ring.lookup(key)
        assert sorted(walk) == sorted(ring.backends)


class TestRouting:
    def test_tenants_land_on_their_ring_owner(self, fleet):
        servers, router = fleet
        by_address = {s.address: s for s in servers}
        envs = [_tenant_env(graph_seed=s) for s in (51, 52, 53)]
        for env in envs:
            backend = RemoteBackend(env, router.address, offer_space=True, timeout=10.0)
            try:
                backend.evaluate_batch(_placements(env, 2))
            finally:
                backend.close()
            fingerprint = SpaceSpec.from_environment(env).fingerprint
            owner = by_address[router.ring.lookup(fingerprint)]
            assert fingerprint in owner.registry

    def test_results_through_router_match_serial(self, fleet):
        _, router = fleet
        remote_env, local_env = _tenant_env(seed=7), _tenant_env(seed=7)
        remote = RemoteBackend(remote_env, router.address, offer_space=True, timeout=10.0)
        serial = SerialBackend(local_env)
        try:
            placements = _placements(remote_env, 6, seed=3)
            got = remote.evaluate_batch(placements)
            want = serial.evaluate_batch(placements)
            assert [m.per_step_time for m in got] == [m.per_step_time for m in want]
            assert remote_env.env_time == local_env.env_time
        finally:
            remote.close()

    def test_handshake_refusal_is_forwarded_verbatim(self):
        # a single-tenant backend refuses a foreign space; the router must
        # surface the structured code, not fail over or mask it
        server = MeasurementServer(_env(seed=1), port=0, workers=1).start()
        router = RouterServer([server.address]).start()
        try:
            env = _tenant_env()
            backend = RemoteBackend(env, router.address, offer_space=True, timeout=10.0)
            with pytest.raises(HandshakeError) as exc:
                backend.evaluate_batch(_placements(env, 1))
            assert exc.value.code == "unknown_fingerprint"
        finally:
            router.close()
            server.close()


class TestFailover:
    def test_dead_backend_is_walked_past(self):
        live = MeasurementServer(multi_tenant=True, port=0, workers=2).start()
        env = _tenant_env(graph_seed=61)
        fingerprint = SpaceSpec.from_environment(env).fingerprint
        # ring ownership depends on the ephemeral port strings, so draw
        # dead addresses until the tenant's ring owner IS the dead one —
        # otherwise the walk never needs to fail over
        while True:
            dead = _dead_address()
            if HashRing([dead, live.address]).lookup(fingerprint) == dead:
                break
        router = RouterServer([dead, live.address]).start()
        try:
            backend = RemoteBackend(env, router.address, offer_space=True, timeout=10.0)
            try:
                results = backend.evaluate_batch(_placements(env, 3))
                assert len(results) == 3
            finally:
                backend.close()
            stats = fetch_router_stats(router.address)
            # the fingerprint hashed to the dead backend and walked on
            assert stats["dial_failures"] + stats["failovers"] >= 1.0
            assert stats[f"routed[{live.address}]"] >= 1.0
        finally:
            router.close()
            live.close()

    def test_no_live_backend_answers_busy(self):
        router = RouterServer([_dead_address()]).start()
        try:
            env = _tenant_env(graph_seed=62)
            backend = RemoteBackend(env, router.address, offer_space=True, timeout=5.0)
            try:
                with pytest.raises(Exception) as exc:
                    backend.evaluate_batch(_placements(env, 1))
                assert "no live backend" in str(exc.value)
            finally:
                backend.close()
        finally:
            router.close()

    def test_search_survives_backend_death_mid_run(self):
        """Kill the owning backend between batches: the reconnect walks
        the ring to the survivor and the search continues (a fresh
        session — the router is stateless, the *client* owns recovery)."""
        servers = [
            MeasurementServer(multi_tenant=True, port=0, workers=2).start()
            for _ in range(2)
        ]
        router = RouterServer([s.address for s in servers]).start()
        by_address = {s.address: s for s in servers}
        try:
            env = _tenant_env(graph_seed=63)
            fingerprint = SpaceSpec.from_environment(env).fingerprint
            owner = by_address[router.ring.lookup(fingerprint)]
            backend = RemoteBackend(
                env, router.address, offer_space=True, timeout=10.0,
                reconnect_attempts=4, backoff_base=0.01, backoff_jitter=0.0,
            )
            try:
                first = backend.evaluate_batch(_placements(env, 2, seed=1))
                assert len(first) == 2
                owner.close()  # the tenant's home backend dies
                second = backend.evaluate_batch(_placements(env, 2, seed=2))
                assert len(second) == 2
                survivor = next(s for s in servers if s is not owner)
                assert fingerprint in survivor.registry
            finally:
                backend.close()
        finally:
            router.close()
            for server in servers:
                server.close()


class TestAdmin:
    def test_stats_op_answers_router_counters(self, fleet):
        servers, router = fleet
        stats = fetch_router_stats(router.address)
        assert stats["router"] == 1.0
        assert stats["backends"] == 2.0
        for server in servers:
            assert f"routed[{server.address}]" in stats

    def test_connections_are_counted(self, fleet):
        _, router = fleet
        before = fetch_router_stats(router.address)["connections"]
        after = fetch_router_stats(router.address)["connections"]
        assert after > before

    def test_first_message_must_be_hello_or_stats(self, fleet):
        _, router = fleet
        host, port = router.address.rsplit(":", 1)
        sock = socket.create_connection((host, int(port)), timeout=5.0)
        try:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            protocol.write_message(wfile, {"op": "evaluate_batch"})
            reply = protocol.read_message(rfile)
            assert not reply["ok"]
            assert "hello" in reply["error"]
        finally:
            sock.close()

    def test_stats_against_a_backend_address_fails_cleanly(self, fleet):
        servers, _ = fleet
        # a measurement server demands hello first — the helper must turn
        # its refusal into a ProtocolError, not a mystery KeyError
        with pytest.raises(ProtocolError, match="router stats failed"):
            fetch_router_stats(servers[0].address)

    def test_membership_op_reports_ring_and_states(self, fleet):
        servers, router = fleet
        membership = fetch_router_membership(router.address)
        assert membership["backends"] == [s.address for s in servers]
        assert membership["states"] == {s.address: "up" for s in servers}

    def test_unknown_admin_op_is_refused(self, fleet):
        _, router = fleet
        with pytest.raises(ProtocolError, match="hello"):
            router_admin(router.address, {"op": "evaluate_batch"}, timeout=5.0)


class TestLiveResize:
    def _populate(self, router_address, graph_seed, n=4):
        env = _tenant_env(graph_seed=graph_seed)
        backend = RemoteBackend(
            env, router_address, offer_space=True, timeout=10.0,
            backoff_base=0.01, backoff_jitter=0.0,
        )
        return env, backend, backend.evaluate_batch(_placements(env, n, seed=1))

    def test_join_then_leave_round_trips_membership(self, fleet):
        servers, router = fleet
        extra = MeasurementServer(multi_tenant=True, port=0, workers=2).start()
        try:
            reply = router_admin(
                router.address, {"op": "join", "backend": extra.address}
            )
            assert extra.address in reply["backends"]
            assert router.ring.state(extra.address) == "up"
            stats = fetch_router_stats(router.address)
            assert stats["joins"] == 1.0
            reply = router_admin(
                router.address, {"op": "leave", "backend": extra.address}
            )
            assert extra.address not in reply["backends"]
            assert fetch_router_stats(router.address)["leaves"] == 1.0
        finally:
            extra.close()

    def test_migrate_op_moves_space_between_backends(self, fleet):
        """The admin ``migrate`` op pushes one space to a chosen backend —
        memo and sessions arrive intact and the source keeps the space's
        counter history in :meth:`migrated_space_stats`."""
        servers, router = fleet
        by_address = {s.address: s for s in servers}
        env, backend, _ = self._populate(router.address, graph_seed=71)
        fingerprint = SpaceSpec.from_environment(env).fingerprint
        old_owner = by_address[router.ring.lookup(fingerprint)]
        target = next(s for s in servers if s is not old_owner)
        try:
            reply = router_admin(
                router.address,
                {"op": "migrate", "fingerprint": fingerprint,
                 "target": target.address},
            )
            assert reply["migrated"] is True
            assert fingerprint in target.registry
            assert fingerprint not in old_owner.registry
            # the old owner keeps the space's counter history
            remembered = old_owner.migrated_space_stats()[fingerprint]
            assert remembered["simulations"] >= 1.0
            adopted = next(
                s for s in target.registry.snapshot()
                if s.fingerprint == fingerprint
            )
            assert adopted.stats()["memo_entries"] >= 1.0
            assert fetch_router_stats(router.address)["migrations"] >= 1.0
        finally:
            backend.close()

    def test_leave_migrates_spaces_with_zero_duplicates(self, fleet):
        """Live downsize: ``leave`` pushes the departing backend's spaces
        to the new ring owners, and replaying the same placements costs
        zero new simulations anywhere in the fleet."""
        servers, router = fleet
        by_address = {s.address: s for s in servers}
        env, backend, first = self._populate(router.address, graph_seed=72)
        fingerprint = SpaceSpec.from_environment(env).fingerprint
        old_owner = by_address[router.ring.lookup(fingerprint)]
        survivor = next(s for s in servers if s is not old_owner)
        try:
            reply = router_admin(
                router.address, {"op": "leave", "backend": old_owner.address}
            )
            assert reply["migrations"] >= 1
            assert fingerprint in survivor.registry
            assert fingerprint not in old_owner.registry
            # the severed client reconnects through the router, lands on
            # the survivor, and replays entirely from the adopted memo
            backend.evaluate_batch(_placements(env, 4, seed=1))
            assert backend.stats()["reconnects"] >= 1.0
            # a fresh client with the same seed commits the same noise
            # stream — migrated memo makes the results bit-for-bit equal
            fresh = RemoteBackend(
                _tenant_env(graph_seed=72), router.address,
                offer_space=True, timeout=10.0,
            )
            try:
                again = fresh.evaluate_batch(_placements(env, 4, seed=1))
            finally:
                fresh.close()
            assert [m.per_step_time for m in again] == [
                m.per_step_time for m in first
            ]
            adopted = next(
                s for s in survivor.registry.snapshot()
                if s.fingerprint == fingerprint
            )
            assert adopted.stats()["simulations"] == 0.0
            assert adopted.stats()["memo_hits"] >= 8.0
        finally:
            backend.close()

    def test_migrate_refuses_unknown_target(self, fleet):
        _, router = fleet
        with pytest.raises(ProtocolError, match="unknown backend"):
            router_admin(
                router.address,
                {"op": "migrate", "fingerprint": "fp", "target": "10.9.9.9:1"},
            )

    def test_standby_apply_membership_never_migrates(self, fleet):
        servers, router = fleet
        standby = RouterServer([servers[0].address]).start()
        try:
            changed = standby.apply_membership(
                [s.address for s in servers],
                {servers[1].address: "suspect"},
            )
            assert changed
            assert standby.backends == [s.address for s in servers]
            assert standby.ring.state(servers[1].address) == "suspect"
            assert standby.stats()["migrations"] == 0.0
            with pytest.raises(ValueError, match="empty backend set"):
                standby.apply_membership([])
        finally:
            standby.close()
