"""Tenant spaces: spec round-trips, registry LRU/eviction, durability, quotas."""

import json
import os

import numpy as np
import pytest

from repro.graph.models.random_graphs import build_random_layered
from repro.service.sessions import SessionRegistry
from repro.service.tenancy import (
    SpaceLoading,
    SpaceRegistry,
    SpaceSpec,
    TenantSpace,
)
from repro.sim import PlacementEnvironment, Topology
from repro.sim.cost_model import CostModel


def _spec(seed=0):
    graph = build_random_layered(num_layers=3, width=3, seed=seed)
    return SpaceSpec(graph, Topology.default_4gpu(num_gpus=2), CostModel())


class TestSpaceSpec:
    def test_roundtrip_is_fingerprint_exact(self):
        spec = _spec(seed=5)
        rebuilt = SpaceSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.fingerprint == spec.fingerprint

    def test_from_environment_matches_env_fingerprint(self):
        spec = _spec(seed=1)
        env = spec.build_environment(seed=42)
        lifted = SpaceSpec.from_environment(env)
        assert lifted.fingerprint == spec.fingerprint

    def test_claimed_fingerprint_mismatch_refused(self):
        data = _spec(seed=2).to_dict()
        data["fingerprint"] = "0" * 64
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            SpaceSpec.from_dict(data)

    def test_unknown_format_version_refused(self):
        data = _spec().to_dict()
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            SpaceSpec.from_dict(data)

    def test_server_seed_does_not_change_raw_outcomes(self):
        spec = _spec(seed=3)
        placement = np.zeros(spec.graph.num_ops, dtype=np.int64)
        raw_a = spec.build_environment(seed=0).simulate_raw(placement)
        raw_b = spec.build_environment(seed=777).simulate_raw(placement)
        assert raw_a.base_time == raw_b.base_time


class TestTenantSpaceQuota:
    def test_quota_rejects_over_inflight(self):
        space = TenantSpace(_spec(), quota=2)
        assert space.try_acquire(2)
        assert not space.try_acquire(1)
        assert space.quota_rejections == 1
        space.release(2)
        assert space.try_acquire(1)

    def test_release_clamps_at_zero(self):
        space = TenantSpace(_spec())
        space.release(5)
        assert space.inflight == 0

    def test_stats_shape(self):
        space = TenantSpace(_spec())
        stats = space.stats()
        assert stats["fingerprint"] == space.fingerprint
        for key in ("sessions", "simulations", "memo_entries", "memo_hits",
                    "inflight", "quota_rejections"):
            assert isinstance(stats[key], float)


class TestRegistryResidency:
    def test_add_is_idempotent_per_fingerprint(self):
        reg = SpaceRegistry()
        a = reg.add(_spec(seed=0), now=0.0)
        b = reg.add(_spec(seed=0), now=1.0)
        assert a is b
        assert len(reg) == 1

    def test_lru_eviction_prefers_least_recent(self):
        reg = SpaceRegistry(max_spaces=2)
        first = reg.add(_spec(seed=0), now=0.0)
        reg.add(_spec(seed=1), now=1.0)
        reg.get(first.fingerprint, now=2.0)  # touch: seed=1 is now LRU
        reg.add(_spec(seed=2), now=3.0)
        assert len(reg) == 2
        assert first.fingerprint in reg
        assert reg.num_evictions == 1

    def test_busy_space_is_not_evicted(self):
        reg = SpaceRegistry(max_spaces=1)
        busy = reg.add(_spec(seed=0), now=0.0)
        busy.try_acquire(1)
        reg.add(_spec(seed=1), now=1.0)
        # the budget holds, but the victim must be the *idle* space — a
        # space with in-flight work is never evicted, even as LRU
        assert len(reg) == 1
        assert busy.fingerprint in reg
        busy.release(1)

    def test_get_with_non_string_fingerprint(self):
        reg = SpaceRegistry()
        assert reg.get(None, now=0.0) is None
        assert reg.get_or_load(12345, now=0.0) is None


class TestRegistryDurability:
    def test_spec_persisted_and_lazily_loaded(self, tmp_path):
        spec = _spec(seed=4)
        reg = SpaceRegistry(spaces_dir=str(tmp_path))
        reg.add(spec, now=0.0)
        assert os.path.exists(tmp_path / f"{spec.fingerprint}.space.json")

        fresh = SpaceRegistry(spaces_dir=str(tmp_path))
        assert spec.fingerprint not in fresh
        space = fresh.get_or_load(spec.fingerprint, now=0.0)
        assert space is not None
        assert space.fingerprint == spec.fingerprint
        assert fresh.num_lazy_loads == 1

    def test_loading_guard_raises_space_loading(self, tmp_path):
        spec = _spec(seed=5)
        reg = SpaceRegistry(spaces_dir=str(tmp_path))
        reg.add(spec, now=0.0)
        fresh = SpaceRegistry(spaces_dir=str(tmp_path))
        fresh._loading.add(spec.fingerprint)  # simulate a concurrent load
        with pytest.raises(SpaceLoading):
            fresh.get_or_load(spec.fingerprint, now=0.0)

    def test_state_survives_eviction_and_reload(self, tmp_path):
        spec = _spec(seed=6)
        reg = SpaceRegistry(spaces_dir=str(tmp_path))
        space = reg.add(spec, now=0.0)
        placement = np.zeros(spec.graph.num_ops, dtype=np.int64)
        raw = space.environment.simulate_raw(placement)
        space.memo.insert(placement, raw)
        session = space.sessions.create(0.0)
        assert reg.evict(spec.fingerprint)

        reloaded = reg.get_or_load(spec.fingerprint, now=1.0)
        assert reloaded is not None
        assert reloaded is not space
        assert len(reloaded.memo) == 1
        assert reloaded.memo.lookup(placement) is not None
        assert reloaded.sessions.resume(session.id, 1.0) is not None

    def test_session_ids_never_reissued_after_restart(self, tmp_path):
        """The registry's restored session counter keeps a restarted server
        from handing a new client an id an old client still resumes."""
        spec = _spec(seed=7)
        reg = SpaceRegistry(spaces_dir=str(tmp_path))
        space = reg.add(spec, now=0.0)
        old = space.sessions.create(0.0)
        reg.persist(space)

        fresh = SpaceRegistry(spaces_dir=str(tmp_path))
        restored = fresh.get_or_load(spec.fingerprint, now=0.0)
        new = restored.sessions.create(0.0)
        assert new.id != old.id

    def test_torn_state_file_is_tolerated(self, tmp_path):
        spec = _spec(seed=8)
        reg = SpaceRegistry(spaces_dir=str(tmp_path))
        reg.add(spec, now=0.0)
        reg.evict(spec.fingerprint)
        state_path = tmp_path / f"{spec.fingerprint}.state.json"
        state_path.write_text('{"torn')
        space = reg.get_or_load(spec.fingerprint, now=1.0)
        assert space is not None  # spec loads; state loss = warm-cache loss

    def test_foreign_state_fingerprint_refused(self):
        space = TenantSpace(_spec(seed=9))
        other = TenantSpace(_spec(seed=10))
        state = other.state_dict()
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            space.load_state(state, now=0.0)

    def test_corrupt_spec_file_returns_unknown(self, tmp_path):
        spec = _spec(seed=11)
        reg = SpaceRegistry(spaces_dir=str(tmp_path))
        spec_path = tmp_path / f"{spec.fingerprint}.space.json"
        spec_path.write_text("not json")
        assert reg.get_or_load(spec.fingerprint, now=0.0) is None
