"""Tests for the liveness-based peak-memory analysis."""

import numpy as np
import pytest

from repro.graph.opgraph import OpGraph
from repro.sim import Simulator, Topology
from repro.sim.memory import peak_memory


@pytest.fixture
def topo():
    return Topology.default_4gpu(num_gpus=2)


class TestPeakMemory:
    def test_peak_not_above_static_plus_copies(self, layered_graph, topo):
        """Without cross-device traffic the dynamic peak cannot exceed the
        everything-resident static bound.  (With traffic it can: transfer
        copies live on the *receiving* device are not in the static model —
        here the cpu-pinned input ops ship tensors to the GPU's consumers,
        so we check the compute GPU, whose only extra copies are bounded by
        the pinned ops' outputs.)"""
        sim = Simulator(layered_graph, topo)
        p = np.ones(layered_graph.num_ops, dtype=np.int64)
        report = peak_memory(sim, p)
        pinned_out = sum(
            n.output.bytes for n in layered_graph.nodes() if n.cpu_only
        ) * sim.cost_model.activation_memory_multiplier
        assert report.peak_bytes[1] <= report.static_bytes[1] + pinned_out + 1e-6

    def test_chain_peak_is_small(self, topo):
        """On a chain only a couple of activations are live at once, so the
        peak is far below the static sum."""
        g = OpGraph()
        prev = g.add_op("n0", "MatMul", (1024, 1024), flops=1e6)
        for i in range(1, 20):
            prev = g.add_op(f"n{i}", "MatMul", (1024, 1024), flops=1e6, inputs=[prev])
        sim = Simulator(g, topo)
        report = peak_memory(sim, np.ones(20, dtype=np.int64))
        one = 1024 * 1024 * 4
        assert report.peak_bytes[1] <= 3 * one
        assert report.static_bytes[1] == pytest.approx(20 * one)

    def test_fan_out_keeps_source_alive(self, topo):
        """A tensor consumed by many later ops stays live until the last."""
        g = OpGraph()
        src = g.add_op("src", "MatMul", (1024, 1024), flops=1e9)
        prev = src
        for i in range(5):
            prev = g.add_op(f"mid{i}", "MatMul", (256, 256), flops=1e6, inputs=[prev])
        g.add_op("late", "Add", (256, 256), flops=1e3, inputs=[src, prev])
        sim = Simulator(g, topo)
        report = peak_memory(sim, np.ones(g.num_ops, dtype=np.int64))
        one = 1024 * 1024 * 4
        # src's big buffer + at least one small one live together
        assert report.peak_bytes[1] >= one

    def test_cross_device_copy_counted_on_both(self, topo):
        g = OpGraph()
        a = g.add_op("a", "MatMul", (2048, 2048), flops=1e6)
        g.add_op("b", "Relu", (2048, 2048), flops=1e3, inputs=[a])
        sim = Simulator(g, topo)
        split = peak_memory(sim, np.array([1, 2]))
        one = 2048 * 2048 * 4
        assert split.peak_bytes[1] >= one  # producer copy
        assert split.peak_bytes[2] >= one  # consumer copy

    def test_params_always_resident(self, topo):
        g = OpGraph()
        g.add_op("w", "MatMul", (2, 2), flops=1.0, param_bytes=1_000_000)
        sim = Simulator(g, topo)
        report = peak_memory(sim, np.array([1]))
        assert report.peak_bytes[1] >= 4_000_000  # ×4 param multiplier

    def test_peak_time_within_step(self, layered_graph, topo):
        sim = Simulator(layered_graph, topo)
        report = peak_memory(sim, np.ones(layered_graph.num_ops, dtype=np.int64))
        bd = sim.simulate(np.ones(layered_graph.num_ops, dtype=np.int64))
        assert np.all(report.peak_time <= bd.makespan + 1e-9)
