"""Tests for execution tracing, Chrome export, and the ASCII Gantt chart."""

import json

import numpy as np
import pytest

from repro.sim import Simulator
from repro.sim.trace import ascii_gantt, chrome_trace, critical_path


@pytest.fixture
def traced(chain_graph, topology):
    sim = Simulator(chain_graph, topology)
    placement = sim.single_device_placement(1)
    bd = sim.simulate(placement, record_trace=True)
    return chain_graph, topology, placement, bd


class TestTraceRecording:
    def test_trace_absent_by_default(self, chain_graph, topology):
        sim = Simulator(chain_graph, topology)
        bd = sim.simulate(sim.single_device_placement(1))
        assert bd.op_start is None and bd.transfers is None

    def test_start_end_consistent(self, traced):
        graph, _, _, bd = traced
        assert np.all(bd.op_end >= bd.op_start)
        assert bd.op_end.max() <= bd.makespan + 1e-12

    def test_chain_ops_sequential(self, traced):
        graph, _, _, bd = traced
        for s, d in graph.edges():
            assert bd.op_start[d] >= bd.op_end[s] - 1e-12

    def test_transfers_recorded_for_cross_edges(self, chain_graph, topology):
        sim = Simulator(chain_graph, topology)
        p = np.array([0] + [1] * 6 + [2] * 6)
        bd = sim.simulate(p, record_trace=True)
        assert len(bd.transfers) >= 1
        src_op, src_dev, dst_dev, start, end, nbytes = bd.transfers[-1]
        assert src_dev != dst_dev
        assert end > start and nbytes > 0


class TestChromeTrace:
    def test_valid_json_with_events(self, traced):
        text = chrome_trace(*traced)
        data = json.loads(text)
        names = {e.get("name") for e in data["traceEvents"]}
        assert "op0" in names
        # one slice event per op plus device metadata
        slices = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) >= traced[0].num_ops

    def test_requires_trace(self, chain_graph, topology):
        sim = Simulator(chain_graph, topology)
        bd = sim.simulate(sim.single_device_placement(1))
        with pytest.raises(ValueError):
            chrome_trace(chain_graph, topology, sim.single_device_placement(1), bd)


class TestGantt:
    def test_renders_all_devices(self, traced):
        graph, topo, placement, bd = traced
        text = ascii_gantt(graph, topo, placement, bd, width=40)
        for dev in topo.devices:
            assert dev.name in text

    def test_busy_device_has_marks(self, traced):
        graph, topo, placement, bd = traced
        text = ascii_gantt(graph, topo, placement, bd, width=40)
        gpu_line = [ln for ln in text.splitlines() if "/gpu:0" in ln][0]
        assert any(c in gpu_line for c in ":-=#")

    def test_idle_device_blank(self, traced):
        graph, topo, placement, bd = traced
        text = ascii_gantt(graph, topo, placement, bd, width=40)
        gpu1 = [ln for ln in text.splitlines() if "/gpu:1" in ln][0]
        bar = gpu1.split("|")[1]
        assert set(bar) <= {" ", "."}


class TestCriticalPath:
    def test_sink_first_and_connected(self, traced):
        graph, _, _, bd = traced
        path = critical_path(graph, bd, limit=5)
        assert path[0] == bd.critical_op
        for a, b in zip(path[:-1], path[1:]):
            assert graph.has_edge(b, a)

    def test_limit_respected(self, traced):
        graph, _, _, bd = traced
        assert len(critical_path(graph, bd, limit=3)) <= 3
