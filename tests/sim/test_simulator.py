"""Tests for the execution simulator: scheduling, memory, communication."""

import numpy as np
import pytest

from repro.graph.models import build_fan
from repro.graph.opgraph import OpGraph
from repro.sim import CostModel, OutOfMemoryError, Simulator, Topology
from repro.sim.devices import DeviceSpec, LinkSpec


def make_topology(num_gpus=2, **kwargs):
    return Topology.default_4gpu(num_gpus=num_gpus, **kwargs)


class TestPlacementNormalisation:
    def test_cpu_only_pinned(self, small_graph, topology):
        sim = Simulator(small_graph, topology)
        p = sim.normalize_placement([1, 1, 1, 1])
        assert p[0] == 0  # the Input op

    def test_wrong_length_rejected(self, small_graph, topology):
        sim = Simulator(small_graph, topology)
        with pytest.raises(ValueError):
            sim.normalize_placement([0, 1])

    def test_out_of_range_rejected(self, small_graph, topology):
        sim = Simulator(small_graph, topology)
        with pytest.raises(ValueError):
            sim.normalize_placement([0, 0, 0, 9])

    def test_colocation_snap(self, topology):
        g = OpGraph()
        g.add_op("a", "MatMul", (4,), colocation_group="x")
        g.add_op("b", "MatMul", (4,), colocation_group="x", inputs=["a"])
        sim = Simulator(g, topology)
        p = sim.normalize_placement([1, 2])
        assert p[0] == p[1] == 1

    def test_colocated_cpu_only_wins(self, topology):
        g = OpGraph()
        g.add_op("a", "MatMul", (4,), colocation_group="x")
        g.add_op("b", "Gather", (4,), colocation_group="x", cpu_only=True, inputs=["a"])
        sim = Simulator(g, topology)
        p = sim.normalize_placement([1, 1])
        assert p[1] == 0


class TestMemory:
    def test_oom_raised_with_details(self, topology):
        g = OpGraph()
        g.add_op("big", "MatMul", (1,), param_bytes=int(20e9))
        sim = Simulator(g, topology)
        with pytest.raises(OutOfMemoryError) as exc:
            sim.simulate([1])
        assert 1 in exc.value.overcommitted

    def test_memory_usage_split(self, small_graph, topology):
        sim = Simulator(small_graph, topology)
        usage = sim.memory_usage([0, 1, 1, 2])
        assert usage.shape == (topology.num_devices,)
        assert usage[1] > 0 and usage[2] > 0

    def test_cpu_absorbs_pinned_memory(self, small_graph, topology):
        sim = Simulator(small_graph, topology)
        u_all_gpu = sim.memory_usage([1, 1, 1, 1])
        assert u_all_gpu[0] > 0  # input op pinned to cpu


class TestScheduling:
    def test_chain_on_one_device_is_serial(self, chain_graph, topology):
        sim = Simulator(chain_graph, topology)
        bd = sim.simulate(sim.single_device_placement(0))
        # makespan >= sum of compute on the device running the chain
        assert bd.makespan >= bd.device_busy.max() * 0.999

    def test_chain_split_no_faster(self, chain_graph, topology):
        """A chain has no parallelism: splitting it over two equal GPUs can
        only add communication."""
        sim = Simulator(chain_graph, topology)
        single = sim.step_time(sim.single_device_placement(1))  # all on gpu1
        half = np.array([0] + [1] * 6 + [2] * 6)
        assert sim.step_time(half) >= single

    def test_fan_split_faster_when_compute_bound(self):
        """Independent branches on separate devices overlap."""
        g = build_fan(width=4, flops=5e9)
        topo = make_topology(num_gpus=4)
        sim = Simulator(g, topo)
        single = sim.step_time(sim.single_device_placement(0))
        spread = np.array([0, 1, 2, 3, 4, 1])
        assert sim.step_time(spread) < single

    def test_transfer_dedup_same_destination(self, topology):
        """One producer feeding two consumers on the same remote device
        ships its tensor once."""
        g = OpGraph()
        a = g.add_op("a", "MatMul", (1000, 1000), flops=1e6)
        g.add_op("b", "Relu", (1000, 1000), flops=1e3, inputs=[a])
        g.add_op("c", "Relu", (1000, 1000), flops=1e3, inputs=[a])
        sim = Simulator(g, topology)
        bd = sim.simulate([1, 2, 2])
        assert bd.comm_bytes == g.node("a").output.bytes

    def test_comm_charged_per_destination(self, topology):
        g = OpGraph()
        a = g.add_op("a", "MatMul", (1000, 1000), flops=1e6)
        g.add_op("b", "Relu", (1000, 1000), flops=1e3, inputs=[a])
        g.add_op("c", "Relu", (1000, 1000), flops=1e3, inputs=[a])
        sim = Simulator(g, topology)
        bd = sim.simulate([1, 2, 0])
        assert bd.comm_bytes == 2 * g.node("a").output.bytes

    def test_same_device_no_comm(self, chain_graph, topology):
        sim = Simulator(chain_graph, topology)
        bd = sim.simulate(sim.single_device_placement(0))
        # only the pinned input op may ship to the compute device
        assert bd.comm_bytes == 0

    def test_makespan_at_least_dispatch_total(self, layered_graph, topology):
        sim = Simulator(layered_graph, topology)
        bd = sim.simulate(sim.single_device_placement(0))
        assert bd.makespan >= bd.dispatch_total * 0.999

    def test_deterministic(self, layered_graph, topology, rng):
        sim = Simulator(layered_graph, topology)
        p = rng.integers(0, topology.num_devices, size=layered_graph.num_ops)
        assert sim.step_time(p) == sim.step_time(p)

    def test_critical_op_is_sink(self, chain_graph, topology):
        sim = Simulator(chain_graph, topology)
        bd = sim.simulate(sim.single_device_placement(1))
        # the last chain op finishes last (dispatch floor aside)
        assert bd.critical_op == chain_graph.num_ops - 1

    def test_lower_bound_below_any_placement(self, layered_graph, topology, rng):
        sim = Simulator(layered_graph, topology)
        lb = sim.lower_bound()
        for _ in range(5):
            p = rng.integers(0, topology.num_devices, size=layered_graph.num_ops)
            try:
                assert sim.step_time(p) >= lb * 0.999
            except OutOfMemoryError:
                pass


class TestCostModel:
    def test_reshape_is_overhead_only(self, topology):
        cm = CostModel()
        g = OpGraph()
        node = g.add_op("r", "Reshape", (10, 10), flops=1e9)
        dev = topology.devices[1]
        assert cm.op_time(node, dev) == dev.per_op_overhead

    def test_gpu_faster_than_cpu_for_dense(self, topology):
        cm = CostModel()
        g = OpGraph()
        node = g.add_op("mm", "MatMul", (10, 10), flops=1e10)
        cpu, gpu = topology.devices[0], topology.devices[1]
        assert cm.op_time(node, gpu) < cm.op_time(node, cpu)

    def test_training_multiplier_scales_compute(self, topology):
        g = OpGraph()
        node = g.add_op("mm", "MatMul", (10, 10), flops=1e10)
        dev = topology.devices[1]
        t1 = CostModel(training_flops_multiplier=1.0).op_time(node, dev)
        t3 = CostModel(training_flops_multiplier=3.0).op_time(node, dev)
        assert t3 > 2.5 * t1

    def test_memory_multipliers(self):
        cm = CostModel(param_memory_multiplier=4.0, activation_memory_multiplier=1.0)
        g = OpGraph()
        node = g.add_op("mm", "MatMul", (10,), param_bytes=100)
        assert cm.op_memory(node) == 4 * 100 + 10 * 4

    def test_unknown_op_type_uses_default(self, topology):
        cm = CostModel(default_efficiency=0.5)
        assert cm.efficiency("MysteryOp", topology.devices[1]) == 0.5


class TestDevices:
    def test_default_topology_shape(self):
        topo = Topology.default_4gpu()
        assert topo.num_devices == 5
        assert len(topo.gpu_indices()) == 4
        assert topo.cpu_indices() == [0]

    def test_device_index_lookup(self):
        topo = Topology.default_4gpu()
        assert topo.device_index("/gpu:2") == 3
        with pytest.raises(KeyError):
            topo.device_index("/tpu:0")

    def test_same_device_link_free(self):
        topo = Topology.default_4gpu()
        link = topo.link(1, 1)
        assert link.transfer_time(1e9) == 0.0

    def test_transfer_time_formula(self):
        link = LinkSpec(bandwidth_bytes_per_s=1e9, latency_s=1e-3)
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(1e9, 0.0).transfer_time(-1)

    def test_bad_device_kind_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("/x:0", "tpu", 1, 1.0, 0.0)

    def test_duplicate_device_names_rejected(self):
        d = DeviceSpec("/gpu:0", "gpu", 1 << 30, 1000.0, 1e-5)
        with pytest.raises(ValueError):
            Topology([d, d], default_link=LinkSpec(1e9, 1e-5))

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            Topology([], default_link=LinkSpec(1e9, 1e-5))
