"""Tests for the fault-injection harness (`repro.sim.faults`)."""

import numpy as np
import pytest

from repro.sim import (
    EvaluationFault,
    FaultInjectingBackend,
    FaultPlan,
    MemoBackend,
    PlacementEnvironment,
    SerialBackend,
    Topology,
    make_backend,
)


def _env(graph, topology, **kwargs):
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("setup_time", 1.0)
    return PlacementEnvironment(graph, topology, **kwargs)


def _random_placements(graph, topology, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, topology.num_devices, size=graph.num_ops, dtype=np.int64)
        for _ in range(n)
    ]


class TestFaultPlan:
    def test_defaults_are_benign(self):
        plan = FaultPlan()
        assert not plan.enabled
        assert plan.crash_rate == plan.straggler_rate == plan.corruption_rate == 0.0

    def test_chaos_constructor(self):
        plan = FaultPlan.chaos(0.3, seed=7)
        assert plan.enabled
        assert plan.crash_rate == plan.straggler_rate == plan.corruption_rate == 0.3
        assert plan.seed == 7

    @pytest.mark.parametrize("field", ["crash_rate", "straggler_rate", "corruption_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_validated(self, field, bad):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: bad})

    def test_other_fields_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(straggler_delay=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(outlier_scale=0.5)
        with pytest.raises(ValueError):
            FaultPlan(corruption_kinds=())
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan(corruption_kinds=("nan", "gremlins"))


class TestEvaluationFault:
    def test_is_a_runtime_error_with_kind(self):
        fault = EvaluationFault("boom", kind="timeout")
        assert isinstance(fault, RuntimeError)
        assert fault.kind == "timeout"
        assert "boom" in str(fault)

    def test_default_kind_is_crash(self):
        assert EvaluationFault("x").kind == "crash"


class TestCrashInjection:
    def test_certain_crash_raises_before_any_commit(self, layered_graph, topology):
        env = _env(layered_graph, topology)
        backend = FaultInjectingBackend(SerialBackend(env), FaultPlan(crash_rate=1.0))
        with pytest.raises(EvaluationFault) as ei:
            backend.evaluate_batch(_random_placements(layered_graph, topology, 1))
        assert ei.value.kind == "crash"
        # the worker died before reporting: no measurement, no clock charge
        assert env.num_evaluations == 0 and env.env_time == 0.0
        assert backend.crashes_injected == 1
        assert backend.faults_injected == 1

    def test_crash_aborts_batch_midway(self, layered_graph, topology):
        # seed chosen so the first placement survives and a later one crashes;
        # earlier commits stay committed (worker crashed mid-batch).
        env = _env(layered_graph, topology)
        backend = FaultInjectingBackend(
            SerialBackend(env), FaultPlan(crash_rate=0.5, seed=0)
        )
        placements = _random_placements(layered_graph, topology, 10)
        with pytest.raises(EvaluationFault):
            backend.evaluate_batch(placements)
        assert 0 < env.num_evaluations < len(placements)


class TestStragglerInjection:
    def test_straggler_charges_wall_clock_not_env_clock(self, layered_graph, topology):
        env = _env(layered_graph, topology)
        reference = _env(layered_graph, topology)
        backend = FaultInjectingBackend(
            SerialBackend(env), FaultPlan(straggler_rate=1.0, straggler_delay=10.0)
        )
        p = _random_placements(layered_graph, topology, 1)[0]
        (m,) = backend.evaluate_batch([p])
        expected = reference.evaluate(p)
        # measurement itself is untouched; the delay lands on the wall channel
        assert m.per_step_time == expected.per_step_time
        assert env.env_time == reference.env_time
        assert backend.stragglers_injected == 1
        assert backend.wall_time > 0
        assert backend.last_eval_latency == pytest.approx(backend.wall_time)
        # stragglers are not faults until a policy timeout says so
        assert backend.faults_injected == 0

    def test_latency_resets_per_evaluation(self, layered_graph, topology):
        backend = FaultInjectingBackend(
            SerialBackend(_env(layered_graph, topology)),
            FaultPlan(straggler_rate=0.5, straggler_delay=10.0, seed=1),
        )
        latencies = []
        for p in _random_placements(layered_graph, topology, 12):
            backend.evaluate_batch([p])
            latencies.append(backend.last_eval_latency)
        assert any(lat == 0.0 for lat in latencies)  # non-stragglers read 0
        assert any(lat > 0.0 for lat in latencies)
        assert backend.wall_time == pytest.approx(sum(latencies))


class TestCorruptionInjection:
    def _corrupted_time(self, layered_graph, topology, kind):
        env = _env(layered_graph, topology)
        backend = FaultInjectingBackend(
            SerialBackend(env),
            FaultPlan(corruption_rate=1.0, corruption_kinds=(kind,)),
        )
        p = _random_placements(layered_graph, topology, 1)[0]
        (m,) = backend.evaluate_batch([p])
        assert m.valid  # corruption masquerades as a successful measurement
        assert backend.corruptions_injected == 1
        return m.per_step_time

    def test_nan(self, layered_graph, topology):
        assert np.isnan(self._corrupted_time(layered_graph, topology, "nan"))

    def test_negative(self, layered_graph, topology):
        assert self._corrupted_time(layered_graph, topology, "negative") < 0

    def test_outlier(self, layered_graph, topology):
        t = self._corrupted_time(layered_graph, topology, "outlier")
        assert np.isfinite(t) and t > 1e3  # ~ms baseline scaled by 1e6

    def test_oom_measurements_are_never_corrupted(self, layered_graph):
        env = _env(layered_graph, Topology.default_4gpu(num_gpus=2, gpu_memory_bytes=1 << 10))
        backend = FaultInjectingBackend(SerialBackend(env), FaultPlan(corruption_rate=1.0))
        p = np.full(layered_graph.num_ops, env.topology.gpu_indices()[0], dtype=np.int64)
        (m,) = backend.evaluate_batch([p])
        assert not m.valid
        assert backend.corruptions_injected == 0  # not counted, so accounting balances


class TestDeterminism:
    def test_same_plan_same_fates(self, layered_graph, topology):
        plan = FaultPlan.chaos(0.4, seed=42)
        placements = _random_placements(layered_graph, topology, 20)

        def run():
            backend = FaultInjectingBackend(SerialBackend(_env(layered_graph, topology)), plan)
            times, crashes = [], 0
            for p in placements:
                try:
                    times.append(backend.evaluate_batch([p])[0].per_step_time)
                except EvaluationFault:
                    crashes += 1
            return times, crashes, backend.stats()

        a, b = run(), run()
        np.testing.assert_array_equal(a[0], b[0])
        assert a[1:] == b[1:]

    def test_different_seed_different_fates(self, layered_graph, topology):
        placements = _random_placements(layered_graph, topology, 30)

        def fate_mask(seed):
            backend = FaultInjectingBackend(
                SerialBackend(_env(layered_graph, topology)),
                FaultPlan(crash_rate=0.5, seed=seed),
            )
            mask = []
            for p in placements:
                try:
                    backend.evaluate_batch([p])
                    mask.append(False)
                except EvaluationFault:
                    mask.append(True)
            return mask

        assert fate_mask(0) != fate_mask(99)

    def test_fault_stream_is_independent_of_measurement_noise(self, layered_graph, topology):
        # same plan over environments with different noise seeds: identical fates
        placements = _random_placements(layered_graph, topology, 15)

        def crash_mask(env_seed):
            backend = FaultInjectingBackend(
                SerialBackend(_env(layered_graph, topology, seed=env_seed)),
                FaultPlan(crash_rate=0.4, seed=5),
            )
            mask = []
            for p in placements:
                try:
                    backend.evaluate_batch([p])
                    mask.append(False)
                except EvaluationFault:
                    mask.append(True)
            return mask

        assert crash_mask(0) == crash_mask(123)


class TestWrapperPlumbing:
    def test_environment_is_inner_environment(self, layered_graph, topology):
        inner = SerialBackend(_env(layered_graph, topology))
        assert FaultInjectingBackend(inner).environment is inner.environment

    def test_close_delegates(self, layered_graph, topology):
        closed = []

        class Recorder(SerialBackend):
            def close(self):
                closed.append(True)

        FaultInjectingBackend(Recorder(_env(layered_graph, topology))).close()
        assert closed == [True]

    def test_stats_merges_inner_stats(self, layered_graph, topology):
        backend = FaultInjectingBackend(MemoBackend(_env(layered_graph, topology)))
        backend.evaluate_batch(_random_placements(layered_graph, topology, 2))
        stats = backend.stats()
        assert stats["misses"] == 2.0  # inner MemoBackend counters survive
        assert stats["faults_injected"] == 0.0
        assert stats["wall_time"] == 0.0

    def test_make_backend_wraps_only_when_enabled(self, layered_graph, topology):
        env = _env(layered_graph, topology)
        assert isinstance(make_backend(env, fault_plan=None), MemoBackend)
        assert isinstance(make_backend(env, fault_plan=FaultPlan()), MemoBackend)
        wrapped = make_backend(env, fault_plan=FaultPlan(crash_rate=0.1))
        assert isinstance(wrapped, FaultInjectingBackend)
        assert isinstance(wrapped.inner, MemoBackend)


class TestBatchSemantics:
    """Multi-placement batches: per-placement draws, documented ordering."""

    def _first_crash_index(self, layered_graph, topology, placements, plan):
        """Crash index according to one-at-a-time evaluation (the oracle)."""
        backend = FaultInjectingBackend(SerialBackend(_env(layered_graph, topology)), plan)
        for i, p in enumerate(placements):
            try:
                backend.evaluate_batch([p])
            except EvaluationFault:
                return i
        return None

    def test_crash_mid_batch_sets_fault_index(self, layered_graph, topology):
        plan = FaultPlan(crash_rate=0.4, seed=1)
        placements = _random_placements(layered_graph, topology, 10)
        k = self._first_crash_index(layered_graph, topology, placements, plan)
        assert k is not None and k > 0  # seed chosen so the crash is mid-batch

        env = _env(layered_graph, topology)
        backend = FaultInjectingBackend(SerialBackend(env), plan)
        with pytest.raises(EvaluationFault) as ei:
            backend.evaluate_batch(placements)
        assert ei.value.index == k
        assert env.num_evaluations == k  # prefix measured, suffix untouched

    def test_prefix_charged_identically_to_serial(self, layered_graph, topology):
        plan = FaultPlan(crash_rate=0.4, seed=1)
        placements = _random_placements(layered_graph, topology, 10)
        k = self._first_crash_index(layered_graph, topology, placements, plan)

        env = _env(layered_graph, topology)
        backend = FaultInjectingBackend(SerialBackend(env), plan)
        with pytest.raises(EvaluationFault):
            backend.evaluate_batch(placements)

        reference = _env(layered_graph, topology)
        expected = SerialBackend(reference).evaluate_batch(placements[:k])
        assert env.env_time == reference.env_time
        assert env.num_evaluations == len(expected)

    def test_batch_and_single_calls_draw_identical_fates(self, layered_graph, topology):
        plan = FaultPlan(straggler_rate=0.5, corruption_rate=0.3, seed=11)
        placements = _random_placements(layered_graph, topology, 12)

        batched = FaultInjectingBackend(SerialBackend(_env(layered_graph, topology)), plan)
        times_batched = [m.per_step_time for m in batched.evaluate_batch(placements)]

        single = FaultInjectingBackend(SerialBackend(_env(layered_graph, topology)), plan)
        times_single = [
            single.evaluate_batch([p])[0].per_step_time for p in placements
        ]
        np.testing.assert_array_equal(times_batched, times_single)
        assert batched.stats() == single.stats()

    def test_corruption_garbles_only_its_own_placement(self, layered_graph, topology):
        plan = FaultPlan(corruption_rate=0.3, corruption_kinds=("nan",), seed=2)
        placements = _random_placements(layered_graph, topology, 12)
        env = _env(layered_graph, topology)
        backend = FaultInjectingBackend(SerialBackend(env), plan)
        got = backend.evaluate_batch(placements)
        assert 0 < backend.corruptions_injected < len(placements)

        reference = _env(layered_graph, topology)
        want = SerialBackend(reference).evaluate_batch(placements)
        for g, w in zip(got, want):
            if np.isnan(g.per_step_time):
                continue  # the corrupted ones
            assert g.per_step_time == w.per_step_time  # siblings untouched
        assert env.env_time == reference.env_time

    def test_straggler_mid_batch_leaves_siblings_untouched(self, layered_graph, topology):
        plan = FaultPlan(straggler_rate=0.3, straggler_delay=5.0, seed=4)
        placements = _random_placements(layered_graph, topology, 12)
        backend = FaultInjectingBackend(SerialBackend(_env(layered_graph, topology)), plan)
        got = backend.evaluate_batch(placements)
        assert 0 < backend.stragglers_injected < len(placements)
        assert backend.wall_time > 0.0

        want = SerialBackend(_env(layered_graph, topology)).evaluate_batch(placements)
        assert [m.per_step_time for m in got] == [m.per_step_time for m in want]
