"""Golden equivalence: BatchSimulator vs K independent scalar simulations.

Every assertion here is ``==`` / ``array_equal`` — never ``allclose``.  The
vectorized sweep performs the same float operations in the same order as
the scalar loop, so the results must be bit-for-bit identical, including
on memory-infeasible lanes (where the batch reports the scalar path's
exact ``OutOfMemoryError`` over-commit detail instead of raising).
"""

import numpy as np
import pytest

from repro.graph.models import build_benchmark, build_random_layered
from repro.sim import BatchSimulator, OutOfMemoryError, Simulator, Topology

BENCHMARKS = ["inception_v3", "gnmt", "bert"]


def _random_batch(rng, num_ops, num_devices, k):
    return [rng.integers(0, num_devices, size=num_ops) for _ in range(k)]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("model", BENCHMARKS)
    def test_benchmark_graphs_bit_for_bit(self, model):
        graph = build_benchmark(model)
        topo = Topology.default_4gpu()
        sim = Simulator(graph, topo)
        batch = BatchSimulator(sim)
        rng = np.random.default_rng(0)
        placements = _random_batch(rng, graph.num_ops, topo.num_devices, 16)

        result = batch.simulate_batch(placements)
        for i, p in enumerate(placements):
            try:
                bd = sim.simulate(p)
            except OutOfMemoryError as exc:
                assert result.step_times[i] == np.inf
                assert result.critical_op[i] == -1
                assert result.oom_details[i] == exc.overcommitted
                continue
            assert result.oom_details[i] is None
            assert result.step_times[i] == bd.makespan
            assert np.array_equal(result.device_busy[i], bd.device_busy)
            assert np.array_equal(result.device_memory[i], sim.memory_usage(p))
            assert result.comm_bytes[i] == bd.comm_bytes
            assert result.comm_time[i] == bd.comm_time
            assert result.critical_op[i] == bd.critical_op
            assert result.dispatch_total[i] == bd.dispatch_total

    def test_memory_infeasible_lanes_report_scalar_oom_detail(self):
        """Force over-commit by shrinking GPU memory until placements OOM."""
        graph = build_benchmark("inception_v3")
        topo = Topology.default_4gpu(gpu_memory_bytes=16_000_000)  # tiny GPUs
        sim = Simulator(graph, topo)
        batch = BatchSimulator(sim)
        rng = np.random.default_rng(1)
        placements = _random_batch(rng, graph.num_ops, topo.num_devices, 8)
        # All ops on CPU is always feasible — mix it in so the batch holds
        # both kinds of lane.
        placements.append(np.zeros(graph.num_ops, dtype=np.int64))

        result = batch.simulate_batch(placements)
        saw_oom = saw_ok = False
        for i, p in enumerate(placements):
            try:
                bd = sim.simulate(p)
            except OutOfMemoryError as exc:
                saw_oom = True
                assert result.step_times[i] == np.inf
                assert result.oom_details[i] == exc.overcommitted
                assert np.all(result.device_busy[i] == 0.0)
                assert result.comm_bytes[i] == 0.0
            else:
                saw_ok = True
                assert result.step_times[i] == bd.makespan
        assert saw_oom and saw_ok

    def test_record_trace_parity(self):
        graph = build_benchmark("inception_v3")
        topo = Topology.default_4gpu()
        sim = Simulator(graph, topo)
        batch = BatchSimulator(sim)
        rng = np.random.default_rng(2)
        placements = _random_batch(rng, graph.num_ops, topo.num_devices, 4)

        result = batch.simulate_batch(placements, record_trace=True)
        assert result.op_start.shape == (4, graph.num_ops)
        for i, p in enumerate(placements):
            bd = sim.simulate(p, record_trace=True)
            assert np.array_equal(result.op_start[i], bd.op_start)
            assert np.array_equal(result.op_end[i], bd.op_end)

    def test_raw_outcomes_roundtrip(self):
        graph = build_random_layered(num_layers=5, width=4, seed=3)
        topo = Topology.default_4gpu(num_gpus=2)
        sim = Simulator(graph, topo)
        batch = BatchSimulator(sim)
        rng = np.random.default_rng(4)
        placements = _random_batch(rng, graph.num_ops, topo.num_devices, 6)
        raws = batch.raw_outcomes(placements)
        assert len(raws) == 6
        for raw, p in zip(raws, placements):
            if raw.oom_detail is None:
                assert raw.base_time == sim.simulate(p).makespan
            else:
                with pytest.raises(OutOfMemoryError):
                    sim.simulate(p)


class TestBatchShapes:
    def test_empty_batch(self):
        graph = build_random_layered(num_layers=3, width=3, seed=0)
        sim = Simulator(graph, Topology.default_4gpu(num_gpus=2))
        batch = BatchSimulator(sim)
        result = batch.simulate_batch([])
        assert len(result) == 0
        assert result.step_times.shape == (0,)

    def test_batch_of_one_equals_scalar(self):
        graph = build_random_layered(num_layers=4, width=4, seed=1)
        topo = Topology.default_4gpu(num_gpus=2)
        sim = Simulator(graph, topo)
        batch = BatchSimulator(sim)
        p = np.random.default_rng(5).integers(0, topo.num_devices, size=graph.num_ops)
        assert batch.step_times([p])[0] == sim.simulate(p).makespan

    def test_shape_validation(self):
        graph = build_random_layered(num_layers=3, width=3, seed=2)
        sim = Simulator(graph, Topology.default_4gpu(num_gpus=2))
        batch = BatchSimulator(sim)
        with pytest.raises(ValueError, match="placement batch"):
            batch.simulate_batch(np.zeros((2, graph.num_ops + 1), dtype=np.int64))
        with pytest.raises(ValueError, match="out of range"):
            batch.simulate_batch(np.full((1, graph.num_ops), 99, dtype=np.int64))

    def test_normalization_matches_scalar(self):
        """Colocation snap and CPU pinning follow the scalar rules row-wise."""
        graph = build_benchmark("gnmt")
        topo = Topology.default_4gpu()
        sim = Simulator(graph, topo)
        batch = BatchSimulator(sim)
        rng = np.random.default_rng(6)
        placements = _random_batch(rng, graph.num_ops, topo.num_devices, 3)
        P = batch.normalize_batch(placements)
        for row, p in zip(P, placements):
            assert np.array_equal(row, sim.normalize_placement(p))
