"""Additional cost-model and calibration tests: the invariants the paper's
qualitative results rest on (DESIGN.md §1 calibration notes)."""

import numpy as np
import pytest

from repro.graph.models import build_benchmark
from repro.graph.opgraph import OpGraph
from repro.sim import Simulator, Topology
from repro.core.predefined import human_expert_placement, single_gpu_placement


@pytest.fixture(scope="module")
def topo():
    return Topology.default_4gpu()


class TestCalibration:
    """The paper-shaped facts the simulator is calibrated to reproduce."""

    @pytest.fixture(scope="class")
    def inception(self):
        return build_benchmark("inception_v3")

    def test_inception_single_gpu_near_70ms(self, inception, topo):
        sim = Simulator(inception, topo)
        t = sim.step_time(single_gpu_placement(inception, topo))
        assert 0.050 <= t <= 0.095  # paper: 0.071 s

    def test_inception_is_launch_bound(self, inception, topo):
        """At batch 1 the dispatch floor dominates — the reason multi-GPU
        does not pay (§IV-D)."""
        sim = Simulator(inception, topo)
        bd = sim.simulate(single_gpu_placement(inception, topo))
        assert bd.makespan == pytest.approx(bd.dispatch_total, rel=0.02)

    def test_inception_branch_split_not_better(self, inception, topo):
        sim = Simulator(inception, topo)
        single = sim.step_time(single_gpu_placement(inception, topo))
        split = np.ones(inception.num_ops, dtype=np.int64)
        for node in inception.nodes():
            if "/b3x3dbl" in node.name or "/bdbl" in node.name or "/b7x7dbl" in node.name:
                split[node.op_id] = 2
        assert sim.step_time(split) >= single * 0.98

    def test_gnmt_expert_beats_naive_split(self, topo):
        graph = build_benchmark("gnmt")
        sim = Simulator(graph, topo)
        expert = sim.step_time(human_expert_placement(graph, topo))
        order = np.asarray(graph.topological_order())
        naive = np.empty(graph.num_ops, dtype=np.int64)
        for i, chunk in enumerate(np.array_split(order, 4)):
            naive[chunk] = 1 + i
        assert expert < sim.step_time(naive)

    def test_gnmt_wavefront_gains_exist(self, topo):
        """The expert's per-layer split must beat serialising everything on
        two devices — the wavefront parallelism the RNN structure offers."""
        graph = build_benchmark("gnmt", batch_size=128)
        sim = Simulator(graph, topo)
        single = sim.step_time(single_gpu_placement(graph, topo))
        expert = sim.step_time(human_expert_placement(graph, topo))
        assert expert < single

    def test_bert_layerwise_split_valid_and_fast(self, topo):
        graph = build_benchmark("bert")
        sim = Simulator(graph, topo)
        placement = np.ones(graph.num_ops, dtype=np.int64)
        for node in graph.nodes():
            name = node.name
            if name.startswith("layer"):
                placement[node.op_id] = 1 + int(name[5:].split("/")[0]) // 4
            elif name.startswith("mlm"):
                placement[node.op_id] = 4
        bd = sim.simulate(placement)  # must not raise
        assert bd.makespan < 2.5
        assert np.all(bd.device_memory <= [d.memory_bytes for d in topo.devices])


class TestSendRecvModel:
    def test_send_occupies_producer_device(self, topo):
        """Cross-device edges charge the sender's timeline (TF rendezvous)."""
        g = OpGraph()
        a = g.add_op("a", "MatMul", (256, 256), flops=1e7)
        for i in range(20):
            g.add_op(f"c{i}", "Relu", (256, 256), flops=1e3, inputs=[a])
        sim = Simulator(g, topo)
        same = sim.simulate(np.ones(g.num_ops, dtype=np.int64))
        spread = np.ones(g.num_ops, dtype=np.int64)
        spread[1:11] = 2
        cross = sim.simulate(spread)
        assert cross.device_busy[1] > same.device_busy[1] - sum(
            sim.cost_model.op_time(g.node(f"c{i}"), topo.devices[1]) for i in range(10)
        )

    def test_dispatch_floor_counts_sends(self, topo):
        g = OpGraph()
        a = g.add_op("a", "MatMul", (512, 512), flops=1e6)
        g.add_op("b", "Relu", (512, 512), flops=1e3, inputs=[a])
        sim = Simulator(g, topo)
        same = sim.simulate(np.array([1, 1]))
        cross = sim.simulate(np.array([1, 2]))
        assert cross.dispatch_total > same.dispatch_total

    def test_cheaper_cpu_dispatch(self, topo):
        g = OpGraph()
        prev = g.add_op("n0", "Relu", (8,), flops=8)
        for i in range(1, 30):
            prev = g.add_op(f"n{i}", "Relu", (8,), flops=8, inputs=[prev])
        sim = Simulator(g, topo)
        gpu = sim.simulate(np.ones(30, dtype=np.int64))
        cpu = sim.simulate(np.zeros(30, dtype=np.int64))
        assert cpu.dispatch_total < gpu.dispatch_total


class TestDevicePrior:
    def test_prior_shifts_initial_distribution(self, rng):
        from repro.placement.seq2seq import Seq2SeqPlacer

        prior = np.array([-3.0, 0.0, 0.0, 0.0, 0.0])
        placer = Seq2SeqPlacer(8, 5, hidden=16, device_prior=prior, rng=rng)
        emb = rng.random((12, 8, 8))
        devices, _ = placer.sample(emb, rng)
        assert (devices == 0).mean() < 0.10

    def test_prior_shape_validated(self, rng):
        from repro.placement.seq2seq import Seq2SeqPlacer

        with pytest.raises(ValueError):
            Seq2SeqPlacer(8, 5, hidden=16, device_prior=np.zeros(3), rng=rng)

    def test_post_prior(self, layered_graph, rng):
        from repro.core import PostAgent

        prior = np.array([-4.0, 0.0, 0.0])
        agent = PostAgent(layered_graph, 3, num_groups=6, device_prior=prior, seed=0)
        samples = agent.sample_placements(20)
        placements = np.stack([s.op_placement for s in samples])
        cpu_rate = (placements == 0).mean()
        # cpu-only ops are pinned to device 0 by the *simulator*, not the
        # agent, so the raw policy should rarely choose the CPU
        assert cpu_rate < 0.15
