"""Tests for the pluggable evaluation backends."""

import numpy as np
import pytest

from repro.sim import (
    MemoBackend,
    ParallelBackend,
    PlacementEnvironment,
    SerialBackend,
    Topology,
    make_backend,
)
from repro.sim.environment import RawOutcome


def _env(graph, topology, **kwargs):
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("setup_time", 1.0)
    return PlacementEnvironment(graph, topology, **kwargs)


def _random_placements(graph, topology, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, topology.num_devices, size=graph.num_ops, dtype=np.int64)
        for _ in range(n)
    ]


def _tiny_gpu_topology():
    """2 GPUs so small that most placements OOM."""
    return Topology.default_4gpu(num_gpus=2, gpu_memory_bytes=1 << 10)


class TestRawCommitSplit:
    def test_evaluate_equals_raw_plus_commit(self, layered_graph, topology):
        a = _env(layered_graph, topology)
        b = _env(layered_graph, topology)
        placements = _random_placements(layered_graph, topology, 8)
        for p in placements:
            ma = a.evaluate(p)
            mb = b.commit(b.simulate_raw(p))
            assert ma.per_step_time == mb.per_step_time
            assert ma.env_time_charged == mb.env_time_charged
        assert a.env_time == b.env_time
        assert a.num_evaluations == b.num_evaluations

    def test_raw_outcome_is_deterministic_and_chargeless(self, layered_graph, topology):
        env = _env(layered_graph, topology)
        p = _random_placements(layered_graph, topology, 1)[0]
        raw1 = env.simulate_raw(p)
        raw2 = env.simulate_raw(p)
        assert raw1.base_time == raw2.base_time
        assert env.env_time == 0.0 and env.num_evaluations == 0

    def test_commit_twice_draws_fresh_noise(self, layered_graph, topology):
        env = _env(layered_graph, topology, noise_std=0.05)
        p = _random_placements(layered_graph, topology, 1)[0]
        raw = env.simulate_raw(p)
        m1, m2 = env.commit(raw), env.commit(raw)
        assert m1.per_step_time != m2.per_step_time
        assert m1.env_time_charged == m2.env_time_charged
        assert env.num_evaluations == 2

    def test_oom_raw_outcome(self, layered_graph):
        env = _env(layered_graph, _tiny_gpu_topology())
        p = np.full(layered_graph.num_ops, env.topology.gpu_indices()[0], dtype=np.int64)
        raw = env.simulate_raw(p)
        assert raw.is_oom and raw.oom_detail
        m = env.commit(raw)
        assert not m.valid and m.env_time_charged == env.oom_time_charge
        assert env.num_oom == 1

    def test_without_breakdown_strips_trace(self, layered_graph, topology):
        env = _env(layered_graph, topology)
        p = _random_placements(layered_graph, topology, 1)[0]
        raw = env.simulate_raw(p, with_breakdown=True)
        assert raw.breakdown is not None
        stripped = raw.without_breakdown()
        assert stripped.breakdown is None and stripped.base_time == raw.base_time

    def test_dead_cache_dict_is_gone(self, layered_graph, topology):
        assert not hasattr(_env(layered_graph, topology), "_cache")


class TestSerialBackend:
    def test_matches_direct_evaluation(self, layered_graph, topology):
        direct = _env(layered_graph, topology)
        backend = SerialBackend(_env(layered_graph, topology))
        placements = _random_placements(layered_graph, topology, 10)
        expected = [direct.evaluate(p) for p in placements]
        got = backend.evaluate_batch(placements)
        assert [m.per_step_time for m in got] == [m.per_step_time for m in expected]
        assert backend.environment.env_time == direct.env_time


class TestMemoBackend:
    def test_hit_and_miss_counting(self, layered_graph, topology):
        backend = MemoBackend(_env(layered_graph, topology))
        p, q = _random_placements(layered_graph, topology, 2)
        backend.evaluate_batch([p, q, p, p, q])
        assert backend.misses == 2
        assert backend.hits == 3
        assert backend.hit_rate == pytest.approx(0.6)
        assert len(backend) == 2

    def test_results_identical_to_serial(self, layered_graph, topology):
        serial = SerialBackend(_env(layered_graph, topology))
        memo = MemoBackend(_env(layered_graph, topology))
        placements = _random_placements(layered_graph, topology, 6)
        batch = placements + placements  # second half hits the cache
        ms = serial.evaluate_batch(batch)
        mm = memo.evaluate_batch(batch)
        assert [m.per_step_time for m in mm] == [m.per_step_time for m in ms]
        assert memo.environment.env_time == serial.environment.env_time
        assert memo.hits == 6

    def test_hits_still_charge_clock_and_draw_noise(self, layered_graph, topology):
        env = _env(layered_graph, topology, noise_std=0.05)
        backend = MemoBackend(env)
        p = _random_placements(layered_graph, topology, 1)[0]
        m1, m2 = backend.evaluate_batch([p, p])
        assert backend.hits == 1
        assert m1.per_step_time != m2.per_step_time  # fresh noise on the hit
        assert env.env_time == pytest.approx(m1.env_time_charged + m2.env_time_charged)
        assert env.num_evaluations == 2

    def test_oom_outcome_is_cached(self, layered_graph):
        env = _env(layered_graph, _tiny_gpu_topology())
        backend = MemoBackend(env)
        p = np.full(layered_graph.num_ops, env.topology.gpu_indices()[0], dtype=np.int64)
        m1, m2 = backend.evaluate_batch([p, p])
        assert backend.hits == 1 and backend.misses == 1
        assert not m1.valid and not m2.valid
        assert m2.oom_detail == m1.oom_detail
        # the hit is still charged and counted as an OOM evaluation
        assert env.num_oom == 2
        assert env.env_time == pytest.approx(2 * env.oom_time_charge)

    def test_lru_eviction(self, layered_graph, topology):
        backend = MemoBackend(_env(layered_graph, topology), max_entries=2)
        a, b, c = _random_placements(layered_graph, topology, 3)
        backend.evaluate_batch([a, b, c])  # a evicted
        assert len(backend) == 2
        backend.evaluate_batch([a])
        assert backend.misses == 4 and backend.hits == 0

    def test_invalid_max_entries_rejected(self, layered_graph, topology):
        with pytest.raises(ValueError):
            MemoBackend(_env(layered_graph, topology), max_entries=0)

    def test_stats(self, layered_graph, topology):
        backend = MemoBackend(_env(layered_graph, topology))
        p = _random_placements(layered_graph, topology, 1)[0]
        backend.evaluate_batch([p, p])
        assert backend.stats() == {"hits": 1.0, "misses": 1.0, "hit_rate": 0.5, "entries": 1.0}


class TestParallelBackend:
    def test_matches_serial_bit_for_bit(self, layered_graph, topology):
        serial = SerialBackend(_env(layered_graph, topology))
        placements = _random_placements(layered_graph, topology, 12)
        expected = serial.evaluate_batch(placements)
        with ParallelBackend(_env(layered_graph, topology), workers=4) as backend:
            got = backend.evaluate_batch(placements)
        assert [m.per_step_time for m in got] == [m.per_step_time for m in expected]
        assert [m.env_time_charged for m in got] == [m.env_time_charged for m in expected]

    def test_preserves_order_with_mixed_oom(self, layered_graph):
        env = _env(layered_graph, Topology.default_4gpu(num_gpus=2, gpu_memory_bytes=1 << 20))
        gpu = env.topology.gpu_indices()[0]
        cpu = env.topology.cpu_indices()[0]
        oom = np.full(layered_graph.num_ops, gpu, dtype=np.int64)
        ok = np.full(layered_graph.num_ops, cpu, dtype=np.int64)
        with ParallelBackend(env, workers=2) as backend:
            results = backend.evaluate_batch([oom, ok, oom, ok])
        assert [m.valid for m in results] == [False, True, False, True]
        assert env.num_oom == 2

    def test_close_is_idempotent(self, layered_graph, topology):
        backend = ParallelBackend(_env(layered_graph, topology), workers=2)
        backend.close()
        backend.close()
        with pytest.raises(RuntimeError):
            backend.evaluate_batch(_random_placements(layered_graph, topology, 1))

    def test_stats_and_validation(self, layered_graph, topology):
        with pytest.raises(ValueError):
            ParallelBackend(_env(layered_graph, topology), workers=-1)
        with ParallelBackend(_env(layered_graph, topology), workers=2) as backend:
            backend.evaluate_batch(_random_placements(layered_graph, topology, 5))
            stats = backend.stats()
        assert stats["workers"] == 2.0
        assert stats["batches"] == 1.0 and stats["dispatched"] == 5.0


class TestMakeBackend:
    def test_selection(self, layered_graph, topology):
        env = _env(layered_graph, topology)
        assert isinstance(make_backend(env), MemoBackend)
        assert isinstance(make_backend(env, cache=False), SerialBackend)
        parallel = make_backend(env, workers=2)
        try:
            assert isinstance(parallel, ParallelBackend)
        finally:
            parallel.close()
        assert isinstance(make_backend(env, workers=1), MemoBackend)


class TestFaultWrapperGoldenEquivalence:
    """A zero-rate FaultInjectingBackend must be invisible: bit-for-bit the
    wrapped backend's measurements, clock, and search result."""

    def _backend_pair(self, kind, layered_graph, topology):
        from repro.sim import FaultInjectingBackend, FaultPlan

        env_plain, env_wrapped = _env(layered_graph, topology), _env(layered_graph, topology)
        if kind == "serial":
            plain, inner = SerialBackend(env_plain), SerialBackend(env_wrapped)
        elif kind == "memo":
            plain, inner = MemoBackend(env_plain), MemoBackend(env_wrapped)
        else:
            plain = ParallelBackend(env_plain, workers=2, seed=0)
            inner = ParallelBackend(env_wrapped, workers=2, seed=0)
        return plain, FaultInjectingBackend(inner, FaultPlan())

    @pytest.mark.parametrize("kind", ["serial", "memo", "parallel"])
    def test_measurement_stream_identical(self, kind, layered_graph, topology):
        plain, wrapped = self._backend_pair(kind, layered_graph, topology)
        placements = _random_placements(layered_graph, topology, 8)
        try:
            expected = plain.evaluate_batch(placements)
            got = wrapped.evaluate_batch(placements)
        finally:
            plain.close()
            wrapped.close()
        assert [m.per_step_time for m in got] == [m.per_step_time for m in expected]
        assert [m.env_time_charged for m in got] == [m.env_time_charged for m in expected]
        assert wrapped.environment.env_time == plain.environment.env_time
        assert wrapped.faults_injected == 0 and wrapped.wall_time == 0.0

    @pytest.mark.parametrize("kind", ["serial", "memo"])
    def test_search_result_identical(self, kind, layered_graph, topology):
        from repro.core import PlacementSearch, SearchConfig

        def run(wrap):
            plain, wrapped = self._backend_pair(kind, layered_graph, topology)
            backend = wrapped if wrap else plain
            agent_env = backend.environment
            from repro.core import PostAgent

            agent = PostAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
            config = SearchConfig(max_samples=20, minibatch_size=10)
            result = PlacementSearch(agent, agent_env, "ppo", config, backend=backend).run()
            plain.close()
            wrapped.close()
            return result

        a, b = run(wrap=False), run(wrap=True)
        assert a.best_time == b.best_time
        assert a.env_time == b.env_time
        assert a.history.per_step_time == b.history.per_step_time
        assert a.history.env_time == b.history.env_time
        np.testing.assert_array_equal(a.best_placement, b.best_placement)
        assert (b.num_faults, b.num_retries, b.num_quarantined) == (0, 0, 0)


class TestRawOutcomePickling:
    def test_roundtrip(self):
        import pickle

        raw = RawOutcome(0.25)
        assert pickle.loads(pickle.dumps(raw)) == raw
        oom = RawOutcome(None, oom_detail={1: (2.0, 1.0)})
        assert pickle.loads(pickle.dumps(oom)).is_oom


class TestMemoPersistence:
    def test_save_load_roundtrip_serves_hits(self, layered_graph, topology, tmp_path):
        writer = MemoBackend(_env(layered_graph, topology))
        placements = _random_placements(layered_graph, topology, 5)
        writer.evaluate_batch(placements)
        path = str(tmp_path / "memo.json")
        writer.save(path)

        reader = MemoBackend(_env(layered_graph, topology, seed=9))
        assert reader.load(path) == 5
        reader.evaluate_batch(placements)
        assert reader.hits == 5 and reader.misses == 0
        # loaded raws are the exact simulator outcomes, not approximations
        for p in placements:
            assert reader.lookup(p) == writer.lookup(p)

    def test_oom_entries_survive_the_roundtrip(self, layered_graph, tmp_path):
        topology = _tiny_gpu_topology()
        writer = MemoBackend(_env(layered_graph, topology))
        p = np.full(layered_graph.num_ops, topology.gpu_indices()[0], dtype=np.int64)
        writer.evaluate_batch([p])
        path = str(tmp_path / "memo.json")
        writer.save(path)

        reader = MemoBackend(_env(layered_graph, topology))
        reader.load(path)
        raw = reader.lookup(p)
        assert raw.is_oom and raw.oom_detail == writer.lookup(p).oom_detail

    def test_load_refuses_fingerprint_mismatch(self, layered_graph, topology, tmp_path):
        from repro.graph.models import build_random_layered

        writer = MemoBackend(_env(layered_graph, topology))
        writer.evaluate_batch(_random_placements(layered_graph, topology, 2))
        path = str(tmp_path / "memo.json")
        writer.save(path)

        other_graph = build_random_layered(num_layers=6, width=5, seed=8)
        reader = MemoBackend(_env(other_graph, topology))
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            reader.load(path)
        assert len(reader) == 0  # nothing leaked in

    def test_load_refuses_unknown_format_version(self, layered_graph, topology, tmp_path):
        import json

        path = tmp_path / "memo.json"
        path.write_text(json.dumps({"format_version": 999, "entries": []}))
        with pytest.raises(ValueError, match="format version"):
            MemoBackend(_env(layered_graph, topology)).load(str(path))

    def test_load_honours_max_entries(self, layered_graph, topology, tmp_path):
        writer = MemoBackend(_env(layered_graph, topology))
        writer.evaluate_batch(_random_placements(layered_graph, topology, 6))
        path = str(tmp_path / "memo.json")
        writer.save(path)

        reader = MemoBackend(_env(layered_graph, topology), max_entries=3)
        reader.load(path)
        assert len(reader) == 3
