"""Tests for the measurement environment (protocol, noise, clock)."""

import numpy as np
import pytest

from repro.sim import PlacementEnvironment


@pytest.fixture
def env(chain_graph, topology):
    return PlacementEnvironment(chain_graph, topology, seed=3)


class TestEvaluate:
    def test_valid_measurement(self, env, chain_graph):
        m = env.evaluate(np.ones(chain_graph.num_ops, dtype=int))
        assert m.valid and np.isfinite(m.per_step_time)
        assert m.per_step_time > 0

    def test_clock_advances_per_evaluation(self, env, chain_graph):
        p = np.ones(chain_graph.num_ops, dtype=int)
        env.evaluate(p)
        t1 = env.env_time
        env.evaluate(p)
        assert env.env_time > t1

    def test_clock_charge_includes_warmup(self, chain_graph, topology):
        env = PlacementEnvironment(
            chain_graph, topology, noise_std=0.0, setup_time=2.0,
            measure_steps=10, warmup_steps=5, warmup_slowdown=3.0,
        )
        m = env.evaluate(np.ones(chain_graph.num_ops, dtype=int))
        expected = 2.0 + m.per_step_time * (5 * 3.0 + 10)
        assert m.env_time_charged == pytest.approx(expected, rel=1e-9)

    def test_noise_free_reproducible(self, chain_graph, topology):
        env = PlacementEnvironment(chain_graph, topology, noise_std=0.0)
        p = np.ones(chain_graph.num_ops, dtype=int)
        assert env.evaluate(p).per_step_time == env.evaluate(p).per_step_time

    def test_noise_small_and_multiplicative(self, chain_graph, topology):
        noisy = PlacementEnvironment(chain_graph, topology, noise_std=0.02, seed=1)
        clean = PlacementEnvironment(chain_graph, topology, noise_std=0.0)
        p = np.ones(chain_graph.num_ops, dtype=int)
        a = noisy.evaluate(p).per_step_time
        b = clean.evaluate(p).per_step_time
        assert abs(a - b) / b < 0.1

    def test_oom_returns_invalid_not_raise(self, topology):
        from repro.graph.opgraph import OpGraph

        g = OpGraph()
        g.add_op("big", "MatMul", (1,), param_bytes=int(50e9))
        env = PlacementEnvironment(g, topology)
        m = env.evaluate([1])
        assert m.is_oom and not m.valid
        assert m.per_step_time == float("inf")
        assert m.oom_detail

    def test_oom_charges_small_time(self, topology):
        from repro.graph.opgraph import OpGraph

        g = OpGraph()
        g.add_op("big", "MatMul", (1,), param_bytes=int(50e9))
        env = PlacementEnvironment(g, topology, oom_time_charge=2.5)
        env.evaluate([1])
        assert env.env_time == pytest.approx(2.5)
        assert env.num_oom == 1

    def test_counters(self, env, chain_graph):
        env.evaluate(np.ones(chain_graph.num_ops, dtype=int))
        assert env.num_evaluations == 1
        env.reset_clock()
        assert env.env_time == 0.0 and env.num_evaluations == 0

    def test_breakdown_optional(self, env, chain_graph):
        p = np.ones(chain_graph.num_ops, dtype=int)
        assert env.evaluate(p).breakdown is None
        assert env.evaluate(p, with_breakdown=True).breakdown is not None


class TestFinalEvaluate:
    def test_does_not_advance_clock(self, env, chain_graph):
        p = np.ones(chain_graph.num_ops, dtype=int)
        env.final_evaluate(p)
        assert env.env_time == 0.0

    def test_low_noise_long_run(self, chain_graph, topology):
        env = PlacementEnvironment(chain_graph, topology, noise_std=0.05, seed=5)
        p = np.ones(chain_graph.num_ops, dtype=int)
        clean = PlacementEnvironment(chain_graph, topology, noise_std=0.0).final_evaluate(p)
        final = env.final_evaluate(p, steps=1000)
        assert abs(final.per_step_time - clean.per_step_time) / clean.per_step_time < 0.02

    def test_invalid_placement(self, topology):
        from repro.graph.opgraph import OpGraph

        g = OpGraph()
        g.add_op("big", "MatMul", (1,), param_bytes=int(50e9))
        env = PlacementEnvironment(g, topology)
        assert not env.final_evaluate([1]).valid


class TestValidation:
    def test_bad_protocol_rejected(self, chain_graph, topology):
        with pytest.raises(ValueError):
            PlacementEnvironment(chain_graph, topology, measure_steps=0)
