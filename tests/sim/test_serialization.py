"""Topology/CostModel serialization round-trips (the tenant-space spec)."""

import pytest

from repro.graph.fingerprint import placement_space_fingerprint
from repro.graph.models.random_graphs import build_random_layered
from repro.sim.cost_model import CostModel
from repro.sim.devices import Topology
from repro.sim.serialization import (
    cost_model_from_dict,
    cost_model_to_dict,
    topology_from_dict,
    topology_to_dict,
)


def _topology():
    return Topology.default_4gpu(num_gpus=3, gpu_memory_bytes=7 * 2**30)


class TestTopologyRoundTrip:
    def test_devices_and_links_survive(self):
        topo = _topology()
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert len(rebuilt.devices) == len(topo.devices)
        for a, b in zip(rebuilt.devices, topo.devices):
            assert a.name == b.name
            assert a.kind == b.kind
            assert a.memory_bytes == b.memory_bytes
            assert a.effective_gflops == b.effective_gflops
        assert rebuilt.default_link.bandwidth_bytes_per_s == (
            topo.default_link.bandwidth_bytes_per_s
        )
        assert rebuilt._links.keys() == topo._links.keys()
        for pair in topo._links:
            assert rebuilt.link(*pair).bandwidth_bytes_per_s == (
                topo.link(*pair).bandwidth_bytes_per_s
            )

    def test_dict_is_json_plain(self):
        import json

        data = topology_to_dict(_topology())
        assert json.loads(json.dumps(data)) == data

    def test_format_version_checked(self):
        data = topology_to_dict(_topology())
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            topology_from_dict(data)


class TestCostModelRoundTrip:
    def test_scalars_and_efficiency_tables_survive(self):
        cm = CostModel()
        rebuilt = cost_model_from_dict(cost_model_to_dict(cm))
        assert cost_model_to_dict(rebuilt) == cost_model_to_dict(cm)

    def test_format_version_checked(self):
        data = cost_model_to_dict(CostModel())
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            cost_model_from_dict(data)


class TestFingerprintExactness:
    def test_roundtrip_preserves_space_fingerprint(self):
        """The whole point: a spec shipped over the wire and rebuilt must
        land in the *identical* measurement space."""
        graph = build_random_layered(num_layers=4, width=4, seed=3)
        topo, cm = _topology(), CostModel()
        before = placement_space_fingerprint(graph, topo, cm)
        rebuilt_topo = topology_from_dict(topology_to_dict(topo))
        rebuilt_cm = cost_model_from_dict(cost_model_to_dict(cm))
        after = placement_space_fingerprint(graph, rebuilt_topo, rebuilt_cm)
        assert before == after
