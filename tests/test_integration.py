"""Integration tests: full pipelines across modules on scaled-down problems."""

import numpy as np
import pytest

from repro import (
    EagleAgent,
    HierarchicalPlannerAgent,
    PlacementEnvironment,
    PlacementSearch,
    PostAgent,
    SearchConfig,
    human_expert_placement,
    single_gpu_placement,
)
from repro.graph.models import build_benchmark
from repro.sim import OutOfMemoryError, Topology


@pytest.fixture(scope="module")
def small_gnmt():
    return build_benchmark("gnmt", seq_len=8, batch_size=16, hidden=64, vocab=500, num_layers=2)


@pytest.fixture(scope="module")
def small_inception():
    return build_benchmark("inception_v3", image_size=99)


class TestEndToEndSearch:
    def test_eagle_full_pipeline(self, small_gnmt):
        env = PlacementEnvironment(small_gnmt, seed=0)
        agent = EagleAgent(
            small_gnmt, env.num_devices, num_groups=8, placer_hidden=16, seed=0
        )
        res = PlacementSearch(agent, env, "ppo", SearchConfig(max_samples=30)).run()
        assert np.isfinite(res.best_time)
        assert res.best_placement is not None
        # the returned placement reproduces the reported time
        check = env.final_evaluate(res.best_placement)
        assert check.valid
        assert check.per_step_time == pytest.approx(res.best_time, rel=0.05)

    def test_search_improves_over_early_samples(self, small_gnmt):
        env = PlacementEnvironment(small_gnmt, seed=1)
        agent = PostAgent(small_gnmt, env.num_devices, num_groups=8, seed=1)
        res = PlacementSearch(agent, env, "ppo_ce", SearchConfig(max_samples=120)).run()
        valid = [
            t for t, v in zip(res.history.per_step_time, res.history.valid) if v
        ]
        early = np.median(valid[:20])
        assert res.best_time < early, "search found nothing better than early median"

    def test_three_agents_comparable_interface(self, small_gnmt):
        env_args = dict(seed=0)
        results = {}
        for name, cls, algo in [
            ("eagle", EagleAgent, "ppo"),
            ("hp", HierarchicalPlannerAgent, "reinforce"),
        ]:
            env = PlacementEnvironment(small_gnmt, **env_args)
            agent = cls(small_gnmt, env.num_devices, num_groups=8, placer_hidden=16, seed=0)
            results[name] = PlacementSearch(agent, env, algo, SearchConfig(max_samples=20)).run()
        env = PlacementEnvironment(small_gnmt, **env_args)
        post = PostAgent(small_gnmt, env.num_devices, num_groups=8, seed=0)
        results["post"] = PlacementSearch(post, env, "ppo_ce", SearchConfig(max_samples=20)).run()
        assert all(np.isfinite(r.best_time) for r in results.values())

    def test_deterministic_given_seed(self, small_gnmt):
        def run():
            env = PlacementEnvironment(small_gnmt, seed=7)
            agent = PostAgent(small_gnmt, env.num_devices, num_groups=8, seed=7)
            return PlacementSearch(agent, env, "ppo", SearchConfig(max_samples=30)).run()

        a, b = run(), run()
        assert a.best_time == b.best_time
        assert np.array_equal(a.best_placement, b.best_placement)


class TestPaperScenarios:
    def test_inception_single_gpu_near_optimal(self, small_inception):
        """Scaled-down version of the paper's Inception finding: the single
        GPU placement is close to anything the RL agent discovers."""
        env = PlacementEnvironment(small_inception, seed=0)
        baseline = env.final_evaluate(single_gpu_placement(small_inception, env.topology))
        agent = PostAgent(small_inception, env.num_devices, num_groups=12, seed=0)
        res = PlacementSearch(agent, env, "ppo_ce", SearchConfig(max_samples=60)).run()
        assert res.best_time <= baseline.per_step_time * 1.15

    def test_full_gnmt_oom_pattern(self):
        """The real benchmark sizes reproduce Table IV's OOM column."""
        graph = build_benchmark("gnmt")
        topo = Topology.default_4gpu()
        env = PlacementEnvironment(graph, topo)
        with pytest.raises(OutOfMemoryError):
            env.simulator.simulate(single_gpu_placement(graph, topo))
        expert = env.final_evaluate(human_expert_placement(graph, topo))
        assert expert.valid

    def test_full_bert_oom_pattern(self):
        graph = build_benchmark("bert")
        topo = Topology.default_4gpu()
        env = PlacementEnvironment(graph, topo)
        with pytest.raises(OutOfMemoryError):
            env.simulator.simulate(single_gpu_placement(graph, topo))
        # expert falls back to single device => also OOM
        m = env.final_evaluate(human_expert_placement(graph, topo))
        assert not m.valid

    def test_state_dict_roundtrip_preserves_policy(self, small_gnmt):
        env = PlacementEnvironment(small_gnmt, seed=0)
        agent = EagleAgent(small_gnmt, env.num_devices, num_groups=8, placer_hidden=16, seed=0)
        state = agent.state_dict()
        p1 = agent.greedy_placement()
        fresh = EagleAgent(small_gnmt, env.num_devices, num_groups=8, placer_hidden=16, seed=0, warm_start=None)
        fresh.load_state_dict(state)
        p2 = fresh.greedy_placement()
        assert np.array_equal(p1, p2)


class TestPolicyTransfer:
    def test_state_dict_transfers_across_graphs(self):
        """Feature dims are graph-independent, so a policy trained on one
        model loads onto another with the same num_groups."""
        a = build_benchmark("gnmt", num_layers=2, seq_len=6, batch_size=8, hidden=32, vocab=200)
        b = build_benchmark("gnmt", num_layers=3, seq_len=8, batch_size=8, hidden=32, vocab=200)
        src = EagleAgent(a, 3, num_groups=8, placer_hidden=16, warm_start=None, seed=0)
        dst = EagleAgent(b, 3, num_groups=8, placer_hidden=16, warm_start=None, seed=1)
        dst.load_state_dict(src.state_dict())
        samples = dst.sample_placements(2)
        assert samples[0].op_placement.shape == (b.num_ops,)

    def test_transfer_across_model_families(self):
        inc = build_benchmark("inception_v3", image_size=75)
        nmt = build_benchmark("gnmt", num_layers=2, seq_len=6, batch_size=8, hidden=32, vocab=200)
        src = EagleAgent(inc, 3, num_groups=8, placer_hidden=16, warm_start=None, seed=0)
        dst = EagleAgent(nmt, 3, num_groups=8, placer_hidden=16, warm_start=None, seed=0)
        dst.load_state_dict(src.state_dict())
        env = PlacementEnvironment(nmt, Topology.default_4gpu(num_gpus=2))
        m = env.evaluate(dst.greedy_placement())
        assert m.valid or m.is_oom  # a well-formed placement either way
