"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.model == "inception_v3" and args.gpus == 4

    def test_place_options(self):
        args = build_parser().parse_args(
            ["place", "--model", "gnmt", "--agent", "post", "--samples", "10"]
        )
        assert args.agent == "post" and args.samples == 10


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info", "--model", "inception_v3"]) == 0
        out = capsys.readouterr().out
        assert "inception" in out and "environment:" in out

    def test_eval_single_gpu_inception(self, capsys):
        assert main(["eval", "--model", "inception_v3", "--placement", "single_gpu"]) == 0
        assert "ms/step" in capsys.readouterr().out

    def test_eval_oom_reports_failure(self, capsys):
        assert main(["eval", "--model", "gnmt", "--placement", "single_gpu"]) == 1
        assert "OOM" in capsys.readouterr().out

    def test_gantt_renders(self, capsys):
        assert main(["gantt", "--model", "inception_v3", "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "/gpu:0" in out and "step time" in out

    def test_place_writes_checkpoint(self, tmp_path, capsys):
        ckpt = str(tmp_path / "out.npz")
        rc = main(
            [
                "place", "--model", "inception_v3", "--agent", "post",
                "--samples", "10", "--groups", "8", "--checkpoint", ckpt,
            ]
        )
        assert rc == 0
        from repro.core.checkpoint import load_checkpoint

        data = load_checkpoint(ckpt)
        assert data["meta"]["num_samples"] == 10
        assert np.isfinite(data["meta"]["best_time"])

    def test_custom_topology_args(self, capsys):
        assert main(["eval", "--model", "inception_v3", "--gpus", "2", "--gpu-mem", "4"]) == 0

    def test_place_with_fault_injection(self, capsys):
        rc = main(
            [
                "place", "--model", "inception_v3", "--agent", "post",
                "--samples", "10", "--groups", "8",
                "--fault-rate", "0.3", "--straggler-rate", "0.3",
                "--corruption-rate", "0.3", "--max-retries", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults:" in out and "quarantined" in out


class TestErrorPaths:
    """Bad flag values exit non-zero with a one-line message, not a traceback."""

    def _expect_usage_error(self, capsys, argv, fragment):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert fragment in err
        assert "Traceback" not in err

    def test_workers_zero_rejected(self, capsys):
        self._expect_usage_error(
            capsys, ["place", "--workers", "0"], "must be >= 1"
        )

    def test_fault_rate_above_one_rejected(self, capsys):
        self._expect_usage_error(
            capsys, ["place", "--fault-rate", "1.5"], "must be a rate in [0, 1]"
        )

    def test_negative_max_retries_rejected(self, capsys):
        self._expect_usage_error(
            capsys, ["place", "--max-retries", "-1"], "must be >= 0"
        )

    def test_non_numeric_rate_rejected(self, capsys):
        self._expect_usage_error(
            capsys, ["place", "--straggler-rate", "lots"], "expected a number"
        )

    def test_error_names_the_offending_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["place", "--corruption-rate", "2"])
        assert "--corruption-rate" in capsys.readouterr().err


class TestServiceCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7077 and args.service_workers == 4

    def test_place_remote_parser(self):
        args = build_parser().parse_args(["place", "--remote", "10.0.0.1:7077"])
        assert args.remote == "10.0.0.1:7077" and args.remote_timeout == 30.0

    def test_memo_path_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "memo.json")
        argv = [
            "place", "--model", "inception_v3", "--agent", "post",
            "--samples", "8", "--groups", "4", "--memo-path", path,
        ]
        assert main(argv) == 0
        assert "raw outcomes saved to" in capsys.readouterr().out
        assert main(argv) == 0  # second run warm-starts from the file
        assert "raw outcomes loaded from" in capsys.readouterr().out

    def test_memo_path_needs_cached_backend(self, capsys):
        assert main(["place", "--memo-path", "x.json", "--no-cache"]) == 2
        assert "--memo-path" in capsys.readouterr().err

    def test_metrics_stream(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        rc = main([
            "place", "--model", "inception_v3", "--agent", "post",
            "--samples", "8", "--groups", "4", "--metrics", str(path),
        ])
        assert rc == 0
        assert "metrics: events streamed" in capsys.readouterr().out
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["event"] == "search_start"
        assert events[-1]["event"] == "search_end"

    def test_place_remote_end_to_end(self, capsys):
        from repro.cli import _make_env
        from repro.service import MeasurementServer

        serve_args = build_parser().parse_args(["serve", "--model", "inception_v3"])
        _, env = _make_env(serve_args)
        with MeasurementServer(env, port=0, workers=2) as server:
            server.start()
            rc = main([
                "place", "--model", "inception_v3", "--agent", "post",
                "--samples", "8", "--groups", "4", "--remote", server.address,
            ])
            assert rc == 0
        out = capsys.readouterr().out
        assert "best placement:" in out
        assert "remote cache:" in out and "on the server" in out
