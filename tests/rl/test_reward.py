"""Tests for reward shaping, the EMA baseline, and rollout containers."""

import numpy as np
import pytest

from repro.rl import (
    EMABaseline,
    EliteStore,
    PlacementSample,
    RolloutBatch,
    compute_advantages,
    reward_from_time,
)


class TestReward:
    def test_negative_sqrt(self):
        assert reward_from_time(4.0) == -2.0

    def test_monotone_in_time(self):
        assert reward_from_time(1.0) > reward_from_time(2.0)

    def test_oom_charged_failure_time(self):
        assert reward_from_time(float("inf"), failure_time=9.0) == -3.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            reward_from_time(1.0, failure_time=0.0)
        with pytest.raises(ValueError):
            reward_from_time(-1.0)


class TestEMABaseline:
    def test_first_value_initialises(self):
        b = EMABaseline(decay=0.9)
        b.update([5.0])
        assert b.value == 5.0

    def test_decay_formula(self):
        b = EMABaseline(decay=0.5)
        b.update([0.0, 10.0])
        assert b.value == pytest.approx(5.0)

    def test_advantage_before_update(self):
        b = EMABaseline()
        b.update([2.0])
        adv = b.advantage([3.0, 1.0])
        assert np.allclose(adv, [1.0, -1.0])

    def test_advantage_cold_start_uses_batch_mean(self):
        b = EMABaseline()
        adv = b.advantage([1.0, 3.0])
        assert np.allclose(adv, [-1.0, 1.0])

    def test_compute_advantages_normalised(self):
        b = EMABaseline()
        adv = compute_advantages([1.0, 2.0, 3.0, 4.0], b, normalize=True)
        assert adv.std() == pytest.approx(1.0)

    def test_compute_advantages_constant_batch_safe(self):
        b = EMABaseline()
        adv = compute_advantages([2.0, 2.0], b, normalize=True)
        assert np.all(np.isfinite(adv))


def make_sample(t=1.0, k=4, valid=True):
    return PlacementSample(
        actions={"devices": np.zeros(k, dtype=np.int64)},
        op_placement=np.zeros(8, dtype=np.int64),
        logp_old=np.full(k, -0.1),
        reward=-np.sqrt(t),
        per_step_time=t,
        valid=valid,
    )


class TestRollout:
    def test_sample_logp_is_vector(self):
        s = make_sample(k=4)
        assert s.logp_old.shape == (4,)
        assert s.logp_old_total == pytest.approx(-0.4)

    def test_scalar_logp_promoted(self):
        s = PlacementSample({}, np.zeros(2, dtype=np.int64), logp_old=-1.5)
        assert s.logp_old.shape == (1,)

    def test_copy_is_deep(self):
        s = make_sample()
        c = s.copy()
        c.actions["devices"][0] = 7
        c.logp_old[0] = 0.0
        assert s.actions["devices"][0] == 0
        assert s.logp_old[0] == -0.1

    def test_batch_requires_matching_advantages(self):
        with pytest.raises(ValueError):
            RolloutBatch([make_sample()], np.zeros(2))

    def test_batch_logp_matrix(self):
        b = RolloutBatch([make_sample(), make_sample()], np.zeros(2))
        assert b.logp_old.shape == (2, 4)
        assert b.rewards.shape == (2,)
        assert len(b) == 2


class TestEliteStore:
    def test_keeps_top_k_by_time(self):
        store = EliteStore(capacity=2)
        for t in (5.0, 1.0, 3.0, 2.0):
            store.add(make_sample(t))
        times = [s.per_step_time for s in store.elites]
        assert times == [1.0, 2.0]

    def test_ignores_invalid(self):
        store = EliteStore(capacity=3)
        store.add(make_sample(1.0, valid=False))
        assert len(store) == 0

    def test_best_property(self):
        store = EliteStore(capacity=3)
        assert store.best is None
        store.extend([make_sample(4.0), make_sample(2.0)])
        assert store.best.per_step_time == 2.0

    def test_stores_copies(self):
        store = EliteStore(capacity=1)
        s = make_sample(1.0)
        store.add(s)
        s.actions["devices"][0] = 9
        assert store.best.actions["devices"][0] == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EliteStore(0)
