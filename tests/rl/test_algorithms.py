"""Tests for REINFORCE / PPO / PPO+CE on a synthetic bandit agent.

The bandit: K independent categorical decisions; reward is the number of
decisions equal to a hidden target.  Each algorithm must (a) interoperate
with the factored log-prob interface, and (b) actually improve the policy.
"""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor
from repro.nn.functional import log_softmax, softmax
from repro.nn.module import Module
from repro.rl import (
    EMABaseline,
    PPO,
    PPOWithCrossEntropy,
    PlacementSample,
    Reinforce,
    RolloutBatch,
    compute_advantages,
    make_algorithm,
)


class BanditAgent(Module):
    """K categorical decisions with independent learnable logits."""

    def __init__(self, k=6, arms=4, seed=0):
        super().__init__()
        self.k, self.arms = k, arms
        self.logits = Parameter(np.zeros((k, arms)))
        self.rng = np.random.default_rng(seed)

    def sample(self, batch):
        lp = self.logits.data - _lse(self.logits.data)
        p = np.exp(lp)
        cdf = np.cumsum(p, axis=1)
        cdf[:, -1] = 1.0
        u = self.rng.random((batch, self.k, 1))
        acts = np.minimum((u > cdf[None]).sum(axis=2), self.arms - 1)
        samples = []
        for b in range(batch):
            samples.append(
                PlacementSample(
                    actions={"devices": acts[b]},
                    op_placement=acts[b],
                    logp_old=lp[np.arange(self.k), acts[b]],
                )
            )
        return samples

    def log_prob_and_entropy(self, samples):
        acts = np.stack([s.actions["devices"] for s in samples])
        logp = log_softmax(self.logits, axis=-1)
        onehot = np.zeros((len(samples), self.k, self.arms))
        onehot[np.arange(len(samples))[:, None], np.arange(self.k)[None], acts] = 1.0
        rows = (logp.reshape(1, self.k, self.arms) * Tensor(onehot)).sum(axis=2)
        p = softmax(self.logits, axis=-1)
        ent = -(p * logp).sum(axis=-1).mean()
        return rows, ent


def _lse(x):
    m = x.max(axis=-1, keepdims=True)
    return m + np.log(np.exp(x - m).sum(axis=-1, keepdims=True))


def run_training(algorithm_name, iterations=60, seed=0, **kwargs):
    agent = BanditAgent(seed=seed)
    target = np.arange(agent.k) % agent.arms
    algo = make_algorithm(algorithm_name, agent, lr=0.05, entropy_coef=0.01, **kwargs)
    baseline = EMABaseline()
    for _ in range(iterations):
        samples = agent.sample(10)
        for s in samples:
            hits = (s.actions["devices"] == target).sum()
            s.reward = float(hits)
            s.per_step_time = float(agent.k - hits + 1)
            s.valid = True
        adv = compute_advantages([s.reward for s in samples], baseline)
        algo.update(RolloutBatch(samples, adv))
    final = np.argmax(agent.logits.data, axis=1)
    return (final == target).mean(), agent


class TestAlgorithmsLearn:
    @pytest.mark.parametrize("name", ["reinforce", "ppo", "ppo_ce"])
    def test_policy_improves(self, name):
        acc, _ = run_training(name)
        assert acc >= 0.8, f"{name} reached only {acc:.0%} of target decisions"

    def test_ppo_update_stats(self):
        agent = BanditAgent()
        algo = PPO(agent, epochs=3)
        samples = agent.sample(4)
        for s in samples:
            s.reward, s.valid = 1.0, True
        stats = algo.update(RolloutBatch(samples, np.array([1.0, -1.0, 0.5, -0.5])))
        assert stats["epochs"] == 3.0
        assert "ratio_mean" in stats and np.isfinite(stats["loss"])

    def test_ppo_first_epoch_ratio_is_one(self):
        agent = BanditAgent()
        algo = PPO(agent, epochs=1)
        samples = agent.sample(4)
        stats = algo.update(RolloutBatch(samples, np.ones(4)))
        assert stats["ratio_mean"] == pytest.approx(1.0, abs=1e-9)

    def test_reinforce_single_epoch(self):
        agent = BanditAgent()
        algo = Reinforce(agent)
        stats = algo.update(RolloutBatch(agent.sample(4), np.ones(4)))
        assert stats["epochs"] == 1.0

    def test_ppo_ce_elites_accumulate(self):
        agent = BanditAgent()
        algo = PPOWithCrossEntropy(agent, ce_interval=10, num_elites=3)
        samples = agent.sample(10)
        for i, s in enumerate(samples):
            s.valid, s.per_step_time, s.reward = True, float(i + 1), -float(i + 1)
        stats = algo.update(RolloutBatch(samples, np.zeros(10)))
        assert len(algo.elites) == 3
        assert "ce_loss" in stats

    def test_ppo_ce_interval_respected(self):
        agent = BanditAgent()
        algo = PPOWithCrossEntropy(agent, ce_interval=100)
        samples = agent.sample(10)
        for s in samples:
            s.valid, s.per_step_time = True, 1.0
        stats = algo.update(RolloutBatch(samples, np.zeros(10)))
        assert "ce_loss" not in stats

    def test_invalid_hyperparameters(self):
        agent = BanditAgent()
        with pytest.raises(ValueError):
            PPO(agent, clip_epsilon=0.0)
        with pytest.raises(ValueError):
            PPOWithCrossEntropy(agent, ce_interval=0)
        with pytest.raises(ValueError):
            make_algorithm("dqn", agent)

    def test_make_algorithm_names(self):
        agent = BanditAgent()
        assert isinstance(make_algorithm("PPO", agent), PPO)
        assert isinstance(make_algorithm("ppo+ce", agent), PPOWithCrossEntropy)
        assert isinstance(make_algorithm("post", agent), PPOWithCrossEntropy)
        r = make_algorithm("reinforce", agent, clip_epsilon=0.3, epochs=4)
        assert isinstance(r, Reinforce)

    def test_clipping_limits_update(self):
        """A huge advantage on an already-updated policy must be clipped."""
        agent = BanditAgent()
        algo = PPO(agent, epochs=8, clip_epsilon=0.1, entropy_coef=0.0)
        samples = agent.sample(2)
        before = agent.logits.data.copy()
        algo.update(RolloutBatch(samples, np.array([100.0, -100.0])))
        # with ratio clipping at 0.1, eight epochs cannot explode the logits
        assert np.abs(agent.logits.data - before).max() < 3.0
