"""Process-level chaos tests (slow lane): SIGKILL and server restarts.

These drive the survivability story end to end with real processes and
real sockets — the in-process equivalents live in
``tests/core/test_resume.py`` and ``tests/service/test_reconnect.py``.
Run with ``pytest -m slow`` (CI has a dedicated kill-and-resume lane).
"""

import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import (
    EvaluationPolicy,
    MeasurementServer,
    PlacementEnvironment,
    PlacementSearch,
    PostAgent,
    RemoteBackend,
    SearchConfig,
)
from repro.core.checkpoint import load_checkpoint
from repro.core.events import SearchCallback
from repro.graph.models import build_random_layered
from repro.sim import Topology

pytestmark = pytest.mark.slow

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _run_place(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC
    return subprocess.run(
        [sys.executable, "-m", "repro", "place", "--model", "inception_v3",
         "--samples", "40", "--seed", "3", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


class TestSigkillResume:
    def test_sigkilled_search_resumes_bit_for_bit(self, tmp_path):
        """SIGKILL `repro place` mid-search; `--resume` must land on the
        uninterrupted run's exact SearchResult (ISSUE acceptance test)."""
        golden = _run_place(["--checkpoint", "golden.npz"], cwd=tmp_path)
        assert golden.returncode == 0, golden.stderr

        env = dict(os.environ)
        env["PYTHONPATH"] = _REPO_SRC
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "place", "--model", "inception_v3",
             "--samples", "40", "--seed", "3", "--checkpoint", "killed.npz"],
            cwd=tmp_path, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        killed_path = tmp_path / "killed.npz"
        deadline = time.time() + 120
        while time.time() < deadline:
            if killed_path.exists() and killed_path.stat().st_size > 0:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("mid-run checkpoint never appeared")
        time.sleep(0.2)  # let another update or two land mid-write
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        # The atomic writer guarantees the file is a complete snapshot.
        ckpt = load_checkpoint(str(killed_path))
        assert ckpt["meta"]["complete"] is False
        assert 0 < ckpt["meta"]["num_samples"] < 40

        # Resume with *conflicting* flags: the checkpoint's stored CLI
        # configuration must win over the resuming command line.
        resumed = _run_place(
            ["--resume", "killed.npz", "--seed", "999"], cwd=tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed from killed.npz" in resumed.stdout

        want = load_checkpoint(str(tmp_path / "golden.npz"))
        got = load_checkpoint(str(killed_path))
        assert got["meta"]["complete"] is True
        for key in ("best_time", "final_time", "num_samples", "num_invalid",
                    "env_time", "num_faults", "num_retries",
                    "num_quarantined", "wall_time"):
            assert got["meta"][key] == want["meta"][key], key
        assert np.array_equal(got["best_placement"], want["best_placement"])
        assert got["history"].per_step_time == want["history"].per_step_time

    def test_vectorized_sigkill_resume_matches_serial_golden(self, tmp_path):
        """Kill a `--vectorized` search mid-run; the resumed run must land on
        the *serial* golden's exact SearchResult.  This pins two promises at
        once: vectorized sweeps are results-neutral, and prepare_batch
        minibatches replay correctly across a checkpoint resume (commits are
        per-placement in submission order, so a half-committed minibatch
        resumes exactly where the kill landed)."""
        golden = _run_place(["--checkpoint", "golden.npz"], cwd=tmp_path)
        assert golden.returncode == 0, golden.stderr

        env = dict(os.environ)
        env["PYTHONPATH"] = _REPO_SRC
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "place", "--model", "inception_v3",
             "--samples", "40", "--seed", "3", "--vectorized",
             "--checkpoint", "killed_vec.npz"],
            cwd=tmp_path, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        killed_path = tmp_path / "killed_vec.npz"
        deadline = time.time() + 120
        while time.time() < deadline:
            if killed_path.exists() and killed_path.stat().st_size > 0:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("mid-run checkpoint never appeared")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        ckpt = load_checkpoint(str(killed_path))
        assert ckpt["meta"]["complete"] is False

        # --vectorized is operational, not semantic: it is NOT a resume key,
        # so resuming with the flag (or without — either way) must reproduce
        # the serial golden bit for bit.
        resumed = _run_place(
            ["--resume", "killed_vec.npz", "--vectorized"], cwd=tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr

        want = load_checkpoint(str(tmp_path / "golden.npz"))
        got = load_checkpoint(str(killed_path))
        assert got["meta"]["complete"] is True
        for key in ("best_time", "final_time", "num_samples", "num_invalid",
                    "env_time", "num_faults", "num_retries",
                    "num_quarantined", "wall_time"):
            assert got["meta"][key] == want["meta"][key], key
        assert np.array_equal(got["best_placement"], want["best_placement"])
        assert got["history"].per_step_time == want["history"].per_step_time

    def test_resume_of_complete_checkpoint_is_a_report(self, tmp_path):
        done = _run_place(["--checkpoint", "done.npz"], cwd=tmp_path)
        assert done.returncode == 0, done.stderr
        again = _run_place(["--resume", "done.npz"], cwd=tmp_path)
        assert again.returncode == 0, again.stderr
        assert "already complete" in again.stdout


class _RestartServerMidSearch(SearchCallback):
    """Kills the measurement server after N updates, then restarts it on
    the same port — the client must ride out both the mid-batch break and
    the session loss on the restarted process."""

    def __init__(self, server, make_server, after_updates=2):
        self.server = server
        self.make_server = make_server
        self.after_updates = after_updates
        self.restarted = False
        self._updates = 0

    def on_update(self, engine, stats):
        self._updates += 1
        if self._updates == self.after_updates and not self.restarted:
            port = int(self.server.address.rsplit(":", 1)[1])
            self.server.close()  # drops every live connection mid-search
            self.server = self.make_server(port)
            self.restarted = True


class TestServerRestartMidSearch:
    def test_search_completes_across_a_server_restart(self):
        graph = build_random_layered(num_layers=6, width=5, seed=7)
        topo = Topology.default_4gpu(num_gpus=2)

        def make_server(port):
            return MeasurementServer(
                PlacementEnvironment(graph, topo, seed=99),
                port=port, workers=2,
            ).start()

        server = make_server(0)
        env = PlacementEnvironment(graph, topo, seed=0)
        backend = RemoteBackend(
            env, server.address, timeout=10.0,
            reconnect_attempts=5, backoff_base=0.05,
        )
        agent = PostAgent(graph, topo.num_devices, num_groups=6, seed=0)
        restarter = _RestartServerMidSearch(server, make_server)
        try:
            search = PlacementSearch(
                agent, env, "ppo", SearchConfig(max_samples=60),
                backend=backend, policy=EvaluationPolicy(max_retries=3),
            )
            result = search.run(callbacks=[restarter])
        finally:
            backend.close()
            restarter.server.close()
        assert restarter.restarted
        assert result.num_samples == 60
        assert np.isfinite(result.best_time)
        # The restart forced at least one re-dial (session was lost with
        # the old process; the backend adopted the new server's session).
        assert backend.num_reconnects >= 2


def _spawn_multi_tenant_serve(port, spaces_dir):
    """`repro serve --multi-tenant` as a real process; waits for the port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--model", "inception_v3",
         "--multi-tenant", "--spaces-dir", str(spaces_dir),
         "--port", str(port), "--service-workers", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 120
    while time.time() < deadline:
        if proc.poll() is not None:
            pytest.fail(f"serve exited early with {proc.returncode}")
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
            return proc
        except OSError:
            time.sleep(0.1)
    proc.kill()
    pytest.fail("multi-tenant server never opened its port")


class _SigkillServerMidSearch(SearchCallback):
    """SIGKILLs the server *process* after N updates and respawns it on the
    same port with the same spaces_dir — no drain, no goodbye, exactly the
    crash the durability layer exists for."""

    def __init__(self, proc, port, spaces_dir, after_updates=2):
        self.proc = proc
        self.port = port
        self.spaces_dir = spaces_dir
        self.after_updates = after_updates
        self.killed = False
        self._updates = 0

    def on_update(self, engine, stats):
        self._updates += 1
        if self._updates == self.after_updates and not self.killed:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=30)
            self.proc = _spawn_multi_tenant_serve(self.port, self.spaces_dir)
            self.killed = True


class TestMultiTenantSigkill:
    def test_tenant_search_survives_sigkill_of_durable_server(self, tmp_path):
        """A client-offered tenant space must ride out a SIGKILL'd server:
        the respawned process lazily reloads the space (spec + memo +
        sessions) from spaces_dir and the search completes."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        proc = _spawn_multi_tenant_serve(port, tmp_path)

        graph = build_random_layered(num_layers=6, width=5, seed=17)
        topo = Topology.default_4gpu(num_gpus=2)
        env = PlacementEnvironment(graph, topo, seed=0)
        backend = RemoteBackend(
            env, f"127.0.0.1:{port}", offer_space=True, timeout=15.0,
            reconnect_attempts=8, backoff_base=0.25, backoff_jitter=0.0,
        )
        agent = PostAgent(graph, topo.num_devices, num_groups=6, seed=0)
        killer = _SigkillServerMidSearch(proc, port, tmp_path)
        try:
            search = PlacementSearch(
                agent, env, "ppo", SearchConfig(max_samples=60),
                backend=backend, policy=EvaluationPolicy(max_retries=3),
            )
            result = search.run(callbacks=[killer])
        finally:
            backend.close()
            killer.proc.kill()
            killer.proc.wait(timeout=30)
        assert killer.killed
        assert result.num_samples == 60
        assert np.isfinite(result.best_time)
        assert backend.num_reconnects >= 2
