"""Process-level chaos tests (slow lane): SIGKILL and server restarts.

These drive the survivability story end to end with real processes and
real sockets — the in-process equivalents live in
``tests/core/test_resume.py`` and ``tests/service/test_reconnect.py``.
Run with ``pytest -m slow`` (CI has a dedicated kill-and-resume lane).
"""

import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import (
    EvaluationPolicy,
    MeasurementServer,
    PlacementEnvironment,
    PlacementSearch,
    PostAgent,
    RemoteBackend,
    SearchConfig,
)
from repro.core.checkpoint import load_checkpoint
from repro.core.events import SearchCallback
from repro.graph.models import build_random_layered
from repro.sim import Topology

pytestmark = pytest.mark.slow

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _run_place(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC
    return subprocess.run(
        [sys.executable, "-m", "repro", "place", "--model", "inception_v3",
         "--samples", "40", "--seed", "3", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


class TestSigkillResume:
    def test_sigkilled_search_resumes_bit_for_bit(self, tmp_path):
        """SIGKILL `repro place` mid-search; `--resume` must land on the
        uninterrupted run's exact SearchResult (ISSUE acceptance test)."""
        golden = _run_place(["--checkpoint", "golden.npz"], cwd=tmp_path)
        assert golden.returncode == 0, golden.stderr

        env = dict(os.environ)
        env["PYTHONPATH"] = _REPO_SRC
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "place", "--model", "inception_v3",
             "--samples", "40", "--seed", "3", "--checkpoint", "killed.npz"],
            cwd=tmp_path, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        killed_path = tmp_path / "killed.npz"
        deadline = time.time() + 120
        while time.time() < deadline:
            if killed_path.exists() and killed_path.stat().st_size > 0:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("mid-run checkpoint never appeared")
        time.sleep(0.2)  # let another update or two land mid-write
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        # The atomic writer guarantees the file is a complete snapshot.
        ckpt = load_checkpoint(str(killed_path))
        assert ckpt["meta"]["complete"] is False
        assert 0 < ckpt["meta"]["num_samples"] < 40

        # Resume with *conflicting* flags: the checkpoint's stored CLI
        # configuration must win over the resuming command line.
        resumed = _run_place(
            ["--resume", "killed.npz", "--seed", "999"], cwd=tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed from killed.npz" in resumed.stdout

        want = load_checkpoint(str(tmp_path / "golden.npz"))
        got = load_checkpoint(str(killed_path))
        assert got["meta"]["complete"] is True
        for key in ("best_time", "final_time", "num_samples", "num_invalid",
                    "env_time", "num_faults", "num_retries",
                    "num_quarantined", "wall_time"):
            assert got["meta"][key] == want["meta"][key], key
        assert np.array_equal(got["best_placement"], want["best_placement"])
        assert got["history"].per_step_time == want["history"].per_step_time

    def test_vectorized_sigkill_resume_matches_serial_golden(self, tmp_path):
        """Kill a `--vectorized` search mid-run; the resumed run must land on
        the *serial* golden's exact SearchResult.  This pins two promises at
        once: vectorized sweeps are results-neutral, and prepare_batch
        minibatches replay correctly across a checkpoint resume (commits are
        per-placement in submission order, so a half-committed minibatch
        resumes exactly where the kill landed)."""
        golden = _run_place(["--checkpoint", "golden.npz"], cwd=tmp_path)
        assert golden.returncode == 0, golden.stderr

        env = dict(os.environ)
        env["PYTHONPATH"] = _REPO_SRC
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "place", "--model", "inception_v3",
             "--samples", "40", "--seed", "3", "--vectorized",
             "--checkpoint", "killed_vec.npz"],
            cwd=tmp_path, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        killed_path = tmp_path / "killed_vec.npz"
        deadline = time.time() + 120
        while time.time() < deadline:
            if killed_path.exists() and killed_path.stat().st_size > 0:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("mid-run checkpoint never appeared")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        ckpt = load_checkpoint(str(killed_path))
        assert ckpt["meta"]["complete"] is False

        # --vectorized is operational, not semantic: it is NOT a resume key,
        # so resuming with the flag (or without — either way) must reproduce
        # the serial golden bit for bit.
        resumed = _run_place(
            ["--resume", "killed_vec.npz", "--vectorized"], cwd=tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr

        want = load_checkpoint(str(tmp_path / "golden.npz"))
        got = load_checkpoint(str(killed_path))
        assert got["meta"]["complete"] is True
        for key in ("best_time", "final_time", "num_samples", "num_invalid",
                    "env_time", "num_faults", "num_retries",
                    "num_quarantined", "wall_time"):
            assert got["meta"][key] == want["meta"][key], key
        assert np.array_equal(got["best_placement"], want["best_placement"])
        assert got["history"].per_step_time == want["history"].per_step_time

    def test_resume_of_complete_checkpoint_is_a_report(self, tmp_path):
        done = _run_place(["--checkpoint", "done.npz"], cwd=tmp_path)
        assert done.returncode == 0, done.stderr
        again = _run_place(["--resume", "done.npz"], cwd=tmp_path)
        assert again.returncode == 0, again.stderr
        assert "already complete" in again.stdout


class _RestartServerMidSearch(SearchCallback):
    """Kills the measurement server after N updates, then restarts it on
    the same port — the client must ride out both the mid-batch break and
    the session loss on the restarted process."""

    def __init__(self, server, make_server, after_updates=2):
        self.server = server
        self.make_server = make_server
        self.after_updates = after_updates
        self.restarted = False
        self._updates = 0

    def on_update(self, engine, stats):
        self._updates += 1
        if self._updates == self.after_updates and not self.restarted:
            port = int(self.server.address.rsplit(":", 1)[1])
            self.server.close()  # drops every live connection mid-search
            self.server = self.make_server(port)
            self.restarted = True


class TestServerRestartMidSearch:
    def test_search_completes_across_a_server_restart(self):
        graph = build_random_layered(num_layers=6, width=5, seed=7)
        topo = Topology.default_4gpu(num_gpus=2)

        def make_server(port):
            return MeasurementServer(
                PlacementEnvironment(graph, topo, seed=99),
                port=port, workers=2,
            ).start()

        server = make_server(0)
        env = PlacementEnvironment(graph, topo, seed=0)
        backend = RemoteBackend(
            env, server.address, timeout=10.0,
            reconnect_attempts=5, backoff_base=0.05,
        )
        agent = PostAgent(graph, topo.num_devices, num_groups=6, seed=0)
        restarter = _RestartServerMidSearch(server, make_server)
        try:
            search = PlacementSearch(
                agent, env, "ppo", SearchConfig(max_samples=60),
                backend=backend, policy=EvaluationPolicy(max_retries=3),
            )
            result = search.run(callbacks=[restarter])
        finally:
            backend.close()
            restarter.server.close()
        assert restarter.restarted
        assert result.num_samples == 60
        assert np.isfinite(result.best_time)
        # The restart forced at least one re-dial (session was lost with
        # the old process; the backend adopted the new server's session).
        assert backend.num_reconnects >= 2


def _spawn_multi_tenant_serve(port, spaces_dir):
    """`repro serve --multi-tenant` as a real process; waits for the port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--model", "inception_v3",
         "--multi-tenant", "--spaces-dir", str(spaces_dir),
         "--port", str(port), "--service-workers", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 120
    while time.time() < deadline:
        if proc.poll() is not None:
            pytest.fail(f"serve exited early with {proc.returncode}")
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
            return proc
        except OSError:
            time.sleep(0.1)
    proc.kill()
    pytest.fail("multi-tenant server never opened its port")


class _SigkillServerMidSearch(SearchCallback):
    """SIGKILLs the server *process* after N updates and respawns it on the
    same port with the same spaces_dir — no drain, no goodbye, exactly the
    crash the durability layer exists for."""

    def __init__(self, proc, port, spaces_dir, after_updates=2):
        self.proc = proc
        self.port = port
        self.spaces_dir = spaces_dir
        self.after_updates = after_updates
        self.killed = False
        self._updates = 0

    def on_update(self, engine, stats):
        self._updates += 1
        if self._updates == self.after_updates and not self.killed:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=30)
            self.proc = _spawn_multi_tenant_serve(self.port, self.spaces_dir)
            self.killed = True


class TestMultiTenantSigkill:
    def test_tenant_search_survives_sigkill_of_durable_server(self, tmp_path):
        """A client-offered tenant space must ride out a SIGKILL'd server:
        the respawned process lazily reloads the space (spec + memo +
        sessions) from spaces_dir and the search completes."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        proc = _spawn_multi_tenant_serve(port, tmp_path)

        graph = build_random_layered(num_layers=6, width=5, seed=17)
        topo = Topology.default_4gpu(num_gpus=2)
        env = PlacementEnvironment(graph, topo, seed=0)
        backend = RemoteBackend(
            env, f"127.0.0.1:{port}", offer_space=True, timeout=15.0,
            reconnect_attempts=8, backoff_base=0.25, backoff_jitter=0.0,
        )
        agent = PostAgent(graph, topo.num_devices, num_groups=6, seed=0)
        killer = _SigkillServerMidSearch(proc, port, tmp_path)
        try:
            search = PlacementSearch(
                agent, env, "ppo", SearchConfig(max_samples=60),
                backend=backend, policy=EvaluationPolicy(max_retries=3),
            )
            result = search.run(callbacks=[killer])
        finally:
            backend.close()
            killer.proc.kill()
            killer.proc.wait(timeout=30)
        assert killer.killed
        assert result.num_samples == 60
        assert np.isfinite(result.best_time)
        assert backend.num_reconnects >= 2


class _KillRingOwnerMidSearch(SearchCallback):
    """The elastic-fleet drill: after N updates, kill the backend that owns
    the tenant's space, `leave` it from the ring, and `join` a fresh
    replacement on the same shared spaces_dir.  The search thread runs the
    whole resize inside the callback, so the client's next RPC meets the
    already-rebalanced ring."""

    def __init__(self, servers, router, fingerprint, spaces_dir,
                 after_updates=2):
        self.servers = servers
        self.router = router
        self.fingerprint = fingerprint
        self.spaces_dir = spaces_dir
        self.after_updates = after_updates
        self.fired = False
        self._updates = 0

    def on_update(self, engine, stats):
        self._updates += 1
        if self._updates == self.after_updates and not self.fired:
            from repro.service.router import router_admin

            victim_address = self.router.ring.lookup(self.fingerprint)
            victim = next(
                s for s in self.servers if s.address == victim_address
            )
            victim.kill(timeout=30.0)
            router_admin(
                self.router.address,
                {"op": "leave", "backend": victim_address},
            )
            replacement = MeasurementServer(
                multi_tenant=True, port=0, workers=2,
                spaces_dir=self.spaces_dir,
            ).start()
            self.servers.append(replacement)
            router_admin(
                self.router.address,
                {"op": "join", "backend": replacement.address},
            )
            self.fired = True


class TestFleetFailoverGolden:
    """ISSUE acceptance: kill a backend mid-search, resize the ring, and
    the completed SearchResult is bit-for-bit the uninterrupted golden's
    (modulo the fault counters the chaos itself produced)."""

    def _fleet(self, tmp_path, tag):
        from repro.service.router import RouterServer

        spaces_dir = str(tmp_path / tag)
        servers = [
            MeasurementServer(
                multi_tenant=True, port=0, workers=2, spaces_dir=spaces_dir
            ).start()
            for _ in range(2)
        ]
        router = RouterServer([s.address for s in servers]).start()
        return servers, router, spaces_dir

    def _search(self, router_address, callbacks):
        graph = build_random_layered(num_layers=6, width=5, seed=23)
        topo = Topology.default_4gpu(num_gpus=2)
        env = PlacementEnvironment(graph, topo, seed=0)
        backend = RemoteBackend(
            env, router_address, offer_space=True, timeout=15.0,
            reconnect_attempts=8, backoff_base=0.25, backoff_jitter=0.0,
        )
        agent = PostAgent(graph, topo.num_devices, num_groups=6, seed=0)
        try:
            search = PlacementSearch(
                agent, env, "ppo", SearchConfig(max_samples=60),
                backend=backend, policy=EvaluationPolicy(max_retries=3),
            )
            return search.run(callbacks=callbacks)
        finally:
            backend.close()

    def test_search_result_is_golden_across_kill_and_resize(self, tmp_path):
        from repro.service.tenancy import SpaceSpec

        graph = build_random_layered(num_layers=6, width=5, seed=23)
        topo = Topology.default_4gpu(num_gpus=2)
        fingerprint = SpaceSpec.from_environment(
            PlacementEnvironment(graph, topo, seed=0)
        ).fingerprint

        servers, router, _ = self._fleet(tmp_path, "golden")
        try:
            golden = self._search(router.address, callbacks=[])
        finally:
            router.close()
            for server in servers:
                server.close()

        servers, router, spaces_dir = self._fleet(tmp_path, "chaos")
        chaos = _KillRingOwnerMidSearch(servers, router, fingerprint, spaces_dir)
        try:
            survived = self._search(router.address, callbacks=[chaos])
        finally:
            router.close()
            for server in servers:
                server.close()

        assert chaos.fired
        assert survived.num_samples == golden.num_samples == 60
        assert survived.best_time == golden.best_time
        assert survived.final_time == golden.final_time
        assert survived.num_invalid == golden.num_invalid
        assert survived.env_time == golden.env_time
        assert np.array_equal(survived.best_placement, golden.best_placement)
        assert survived.history.per_step_time == golden.history.per_step_time


class TestSigkillDuringMigration:
    """SIGKILL the migration *source* process while it pushes a space to a
    peer: every durable file in the shared spaces_dir must still parse as
    complete JSON — the atomic-rename discipline means a crash at any
    instant leaves either the old snapshot or the new one, never a torn
    write — and a respawned server must still serve the space."""

    def test_durable_state_never_half_written(self, tmp_path):
        import json

        from repro.service.client import migrate_space_request
        from repro.service.router import _backend_request

        ports = []
        for _ in range(2):
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            ports.append(probe.getsockname()[1])
            probe.close()
        port_a, port_b = ports
        proc_a = _spawn_multi_tenant_serve(port_a, tmp_path)
        proc_b = _spawn_multi_tenant_serve(port_b, tmp_path)

        graph = build_random_layered(num_layers=6, width=5, seed=29)
        topo = Topology.default_4gpu(num_gpus=2)
        env = PlacementEnvironment(graph, topo, seed=0)
        from repro.service.tenancy import SpaceSpec

        fingerprint = SpaceSpec.from_environment(env).fingerprint
        try:
            # populate a durable space on A (retained batches persist it)
            backend = RemoteBackend(
                env, f"127.0.0.1:{port_a}", offer_space=True, timeout=15.0,
            )
            try:
                rng = np.random.default_rng(5)
                for _ in range(4):
                    placements = [
                        rng.integers(0, topo.num_devices, env.graph.num_ops)
                        for _ in range(8)
                    ]
                    backend.evaluate_batch(placements)
            finally:
                backend.close()

            # fire the migration push and SIGKILL the source mid-flight
            request = migrate_space_request(
                fingerprint, target=f"127.0.0.1:{port_b}"
            )

            def push():
                try:
                    _backend_request(f"127.0.0.1:{port_a}", request, 15.0)
                except Exception:
                    pass  # the kill races the reply on purpose

            import threading

            pusher = threading.Thread(target=push)
            pusher.start()
            time.sleep(0.05)
            proc_a.send_signal(signal.SIGKILL)
            proc_a.wait(timeout=30)
            pusher.join(timeout=30)

            # every durable file is complete JSON, whatever the timing
            durable = sorted(tmp_path.glob("*.json"))
            assert durable, "expected durable space files"
            for path in durable:
                json.loads(path.read_text())

            # a respawn over the same dir still serves the space
            proc_a = _spawn_multi_tenant_serve(port_a, tmp_path)
            check = RemoteBackend(env, f"127.0.0.1:{port_a}", timeout=15.0)
            try:
                results = check.evaluate_batch(
                    [np.zeros(env.graph.num_ops, dtype=np.int64)]
                )
                assert len(results) == 1
            finally:
                check.close()
        finally:
            for proc in (proc_a, proc_b):
                proc.kill()
                proc.wait(timeout=30)
