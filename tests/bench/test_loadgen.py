"""Loadgen harness: fleet lifecycle, report schema, the correctness gate,
and BENCH publication.  A small real fleet run keeps this in the fast lane
(tiny graphs, few searches); CI's fleet-loadgen lane runs the full scale."""

import json

import pytest

from repro.bench.loadgen import (
    FORMAT,
    FORMAT_VERSION,
    LocalFleet,
    check_fleet,
    make_chaos_resize,
    make_tenant_specs,
    publish_to_bench,
    run_loadgen,
)
from repro.bench.micro import check_report, load_report


def _small_run(fleet, *, tenants=3, searches=6, rounds=2):
    specs = make_tenant_specs(tenants)
    report = run_loadgen(
        fleet.address, specs,
        searches=searches, samples=4, batch=2, rounds=rounds,
        seed=0, timeout=30.0,
    )
    return specs, report


class TestMakeTenantSpecs:
    def test_fingerprints_are_distinct(self):
        specs = make_tenant_specs(4)
        assert len({s.fingerprint for s in specs}) == 4

    def test_count_validated(self):
        with pytest.raises(ValueError):
            make_tenant_specs(0)


class TestLoadgenRun:
    def test_mixed_tenant_run_is_clean_and_duplicate_free(self):
        with LocalFleet(servers=2, workers=2) as fleet:
            specs, report = _small_run(fleet)
            assert report["format"] == FORMAT
            assert report["format_version"] == FORMAT_VERSION
            assert report["metrics"]["loadgen.errors"] == 0.0
            assert report["metrics"]["loadgen.throughput_placements_per_sec"] > 0
            assert report["metrics"]["loadgen.tenants"] == 3.0
            assert len(report["tenant_fingerprints"]) == 3
            failures = check_fleet(report, fleet.space_stats())
            assert failures == []
            # routing spread: the router touched at least one backend and
            # every tenant is resident somewhere in the fleet
            hosted = set(fleet.space_stats())
            assert {s.fingerprint for s in specs} <= hosted

    def test_single_round_skips_memo_expectation(self):
        with LocalFleet(servers=1, workers=2) as fleet:
            _, report = _small_run(fleet, tenants=2, searches=2, rounds=1)
            failures = check_fleet(
                report, fleet.space_stats(), expect_memo_hits=False
            )
            assert failures == []

    def test_report_is_strict_json(self):
        with LocalFleet(servers=1, workers=2) as fleet:
            _, report = _small_run(fleet, tenants=2, searches=2)
        assert json.loads(json.dumps(report, allow_nan=False)) == report

    def test_specs_required(self):
        with pytest.raises(ValueError):
            run_loadgen("127.0.0.1:1", [], searches=1)
        with pytest.raises(ValueError):
            run_loadgen("127.0.0.1:1", make_tenant_specs(1), searches=0)

    def test_chaos_fraction_validated(self):
        with pytest.raises(ValueError):
            run_loadgen(
                "127.0.0.1:1", make_tenant_specs(1), searches=1,
                chaos=lambda: None, chaos_at_fraction=1.0,
            )


class TestChaosResize:
    def test_kill_and_replace_mid_run_stays_clean(self, tmp_path):
        """The acceptance scenario at fast-lane scale: kill a backend
        mid-run, remove it from the ring, join a replacement — zero
        client-visible errors, zero duplicate simulations, failover
        latency lanes published."""
        with LocalFleet(
            servers=3, workers=2,
            spaces_dir=str(tmp_path / "spaces"), shared_spaces=True,
        ) as fleet:
            specs = make_tenant_specs(3)
            chaos = make_chaos_resize(fleet, fingerprint=specs[0].fingerprint)
            report = run_loadgen(
                fleet.address, specs,
                searches=8, samples=4, batch=2, rounds=2,
                seed=0, timeout=30.0,
                chaos=chaos, chaos_at_fraction=0.25,
            )
            assert report["metrics"]["loadgen.errors"] == 0.0
            info = report["chaos"]
            assert info is not None and info["victim"] != info["replacement"]
            assert len(fleet.dead) == 1
            assert fleet.dead[0].address == info["victim"]
            assert "loadgen.failover_p99_ms" in report["metrics"]
            assert report["metrics"]["loadgen.failover_rpcs"] >= 0.0
            failures = check_fleet(report, fleet.space_stats())
            assert failures == []

    def test_shared_spaces_requires_spaces_dir(self):
        with pytest.raises(ValueError, match="spaces_dir"):
            LocalFleet(servers=2, workers=2, shared_spaces=True)

    def test_kill_server_unknown_address(self, tmp_path):
        with LocalFleet(servers=1, workers=1) as fleet:
            with pytest.raises(ValueError, match="no fleet server"):
                fleet.kill_server("127.0.0.1:1")


class TestCheckFleet:
    def _report(self):
        return {
            "metrics": {"loadgen.errors": 0.0},
            "errors": [],
            "tenant_fingerprints": ["f" * 64],
            "per_tenant": {"f" * 64: {"unique_placements": 4.0}},
        }

    def test_duplicate_simulations_flagged(self):
        stats = {"f" * 64: {"simulations": 6.0, "memo_hits": 2.0}}
        failures = check_fleet(self._report(), stats)
        assert any("duplicates" in f for f in failures)

    def test_unhosted_tenant_flagged(self):
        failures = check_fleet(self._report(), {})
        assert any("hosted by no server" in f for f in failures)

    def test_missing_memo_hits_flagged_only_when_expected(self):
        stats = {"f" * 64: {"simulations": 4.0, "memo_hits": 0.0}}
        assert any("memo" in f for f in check_fleet(self._report(), stats))
        assert check_fleet(self._report(), stats, expect_memo_hits=False) == []

    def test_search_errors_flagged(self):
        report = self._report()
        report["metrics"]["loadgen.errors"] = 2.0
        report["errors"] = ["evaluate: boom", "connect: nope"]
        stats = {"f" * 64: {"simulations": 4.0, "memo_hits": 1.0}}
        failures = check_fleet(report, stats)
        assert any("search errors" in f for f in failures)


class TestPublishToBench:
    def _report(self):
        return {
            "metrics": {
                "loadgen.throughput_placements_per_sec": 123.0,
                "loadgen.errors": 0.0,
            },
            "config": {"searches": 4, "tenants": 2},
        }

    def test_fresh_file_gets_micro_skeleton(self, tmp_path):
        path = str(tmp_path / "BENCH_micro.json")
        merged = publish_to_bench(self._report(), path)
        assert merged["metrics"]["loadgen.throughput_placements_per_sec"] == 123.0
        assert load_report(path) == merged
        assert merged["config"]["loadgen"]["searches"] == 4

    def test_existing_metrics_survive_the_merge(self, tmp_path):
        path = str(tmp_path / "BENCH_micro.json")
        publish_to_bench(self._report(), path)
        second = {
            "metrics": {"loadgen.latency_p50_ms": 9.0},
            "config": {"searches": 8},
        }
        merged = publish_to_bench(second, path)
        assert merged["metrics"]["loadgen.throughput_placements_per_sec"] == 123.0
        assert merged["metrics"]["loadgen.latency_p50_ms"] == 9.0

    def test_micro_gate_skips_one_sided_loadgen_lanes(self, tmp_path):
        # a baseline without loadgen.* metrics: publishing them must not
        # trip the regression gate (one-sided metrics are skipped)
        path = str(tmp_path / "BENCH_micro.json")
        merged = publish_to_bench(self._report(), path)
        baseline_path = str(tmp_path / "baseline.json")
        baseline = dict(merged, metrics={})
        with open(baseline_path, "w") as fh:
            json.dump(baseline, fh)
        failures = check_report(merged, baseline_path=baseline_path)
        assert failures == []
