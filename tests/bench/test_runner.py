"""Tests for the bench harness (runner, cache, experiment factory, tables)."""

import numpy as np
import pytest

from repro.bench import (
    AGENT_KINDS,
    ExperimentRunner,
    ExperimentSpec,
    build_experiment_graph,
    default_spec,
    format_time,
    make_agent,
    render_curves,
    render_table,
    sample_budget,
)
from repro.bench.runner import ExperimentOutcome


class TestSpec:
    def test_key_stable(self):
        a = ExperimentSpec("gnmt", "eagle", "ppo", 32, 100)
        b = ExperimentSpec("gnmt", "eagle", "ppo", 32, 100)
        assert a.key() == b.key()

    def test_key_distinguishes_fields(self):
        a = ExperimentSpec("gnmt", "eagle", "ppo", 32, 100)
        b = ExperimentSpec("gnmt", "eagle", "ppo", 32, 100, seed=1)
        assert a.key() != b.key()

    def test_default_spec_profiles(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        spec = default_spec("gnmt", "eagle", "ppo")
        assert spec.scale == "quick"
        assert spec.max_samples == sample_budget("gnmt", "quick")

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        from repro.bench import scale_profile

        with pytest.raises(ValueError):
            scale_profile()


class TestRunnerCaching:
    def test_predefined_runs_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        runner = ExperimentRunner(tmp_path)
        spec = default_spec("inception_v3", "single_gpu", "none")
        out1 = runner.run(spec)
        assert np.isfinite(out1.best_time)
        # second call hits the memory cache; a fresh runner hits the disk
        out2 = ExperimentRunner(tmp_path).run(spec)
        assert out2.best_time == out1.best_time
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_rl_run_records_history(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        runner = ExperimentRunner(tmp_path)
        spec = ExperimentSpec(
            "inception_v3", "post", "ppo_ce", num_groups=8, max_samples=20,
            placer_hidden=16, scale="quick",
        )
        out = runner.run(spec)
        assert out.num_samples == 20
        assert len(out.history_best) == 20
        assert np.isfinite(out.best_time)

    def test_oom_predefined_reported(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        runner = ExperimentRunner(tmp_path)
        out = runner.run(default_spec("gnmt", "single_gpu", "none"))
        assert not np.isfinite(out.best_time)

    def test_unknown_predefined_agent(self, tmp_path):
        runner = ExperimentRunner(tmp_path)
        with pytest.raises(ValueError):
            runner.run(ExperimentSpec("inception_v3", "wizard", "none", 8, 10, scale="quick"))

    def test_outcome_json_roundtrip(self):
        out = ExperimentOutcome(
            spec={"model": "x"}, best_time=1.0, final_time=1.1, num_invalid=0,
            num_samples=5, env_time=10.0, history_env_time=[1.0],
            history_per_step=[2.0], history_best=[2.0],
        )
        back = ExperimentOutcome.from_json(out.to_json())
        assert back.best_time == 1.0 and back.history_best == [2.0]


class TestFactories:
    def test_every_rl_agent_kind_constructs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        graph = build_experiment_graph("inception_v3", "quick")
        for kind in AGENT_KINDS:
            if kind in ("single_gpu", "human_expert"):
                continue
            agent = make_agent(kind, graph, 3, num_groups=8, placer_hidden=16, seed=0)
            samples = agent.sample_placements(2)
            assert len(samples) == 2

    def test_unknown_agent_kind(self):
        graph = build_experiment_graph("inception_v3", "quick")
        with pytest.raises(ValueError):
            make_agent("alphago", graph, 3)

    def test_graph_cache_by_scale(self):
        a = build_experiment_graph("inception_v3", "quick")
        b = build_experiment_graph("inception_v3", "quick")
        assert a is b


class TestTables:
    def test_format_time(self):
        assert format_time(1.2345) == "1.234" or format_time(1.2345) == "1.235"
        assert format_time(float("inf")) == "OOM"
        assert format_time(None) == "OOM"

    def test_render_table_contains_rows(self):
        text = render_table("T", ["A", "B"], {"gnmt": [1.0, float("inf")]})
        assert "gnmt" in text and "OOM" in text and "1.000" in text

    def test_render_curves_skips_placeholders(self):
        text = render_curves("C", {"x": ([1.0, 2.0, 3.0], [-1.0, 5.0, 4.0])})
        assert "5.000" in text and "-1" not in text
