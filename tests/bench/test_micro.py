"""The bench-micro lane: report schema, determinism of shape, and the
regression gate's exit-code contract."""

import json
import subprocess
import sys
import os

import pytest

from repro.bench.micro import (
    BENCH_MODELS,
    FORMAT,
    FORMAT_VERSION,
    SPEEDUP_GATE_METRIC,
    check_report,
    load_report,
    write_report,
)

_REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)


def _fake_report(**metric_overrides):
    metrics = {"policy.updates_per_sec": 2.0, "service.placements_per_sec": 500.0}
    for model in BENCH_MODELS:
        metrics[f"sim.serial.{model}.placements_per_sec"] = 100.0
        metrics[f"sim.batch64.{model}.placements_per_sec"] = 400.0
        metrics[f"sim.speedup.{model}"] = 4.0
    metrics.update(metric_overrides)
    return {
        "format": FORMAT,
        "format_version": FORMAT_VERSION,
        "config": {"batch": 64, "repeats": 3, "seed": 0},
        "metrics": metrics,
        "summary": [],
    }


class TestReportSchema:
    def test_committed_baseline_is_valid_and_current(self):
        """BENCH_micro.json at the repo root loads under today's schema and
        carries every lane the bench emits."""
        root = os.path.dirname(_REPO_SRC)
        report = load_report(os.path.join(root, "BENCH_micro.json"))
        assert report["format_version"] == FORMAT_VERSION
        metrics = report["metrics"]
        assert SPEEDUP_GATE_METRIC in metrics
        for model in BENCH_MODELS:
            assert f"sim.serial.{model}.placements_per_sec" in metrics
            assert f"sim.speedup.{model}" in metrics
        assert "policy.updates_per_sec" in metrics
        assert "service.placements_per_sec" in metrics

    def test_write_is_sorted_and_stable(self, tmp_path):
        """Sorted keys + trailing newline: PR-to-PR diffs stay line-meaningful."""
        path = tmp_path / "r.json"
        write_report(_fake_report(), str(path))
        text = path.read_text()
        assert text.endswith("\n")
        keys = list(json.loads(text)["metrics"])
        assert keys == sorted(keys)
        write_report(_fake_report(), str(tmp_path / "r2.json"))
        assert text == (tmp_path / "r2.json").read_text()

    def test_load_rejects_wrong_format_and_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "something.else"}))
        with pytest.raises(ValueError, match="not a repro.bench.micro"):
            load_report(str(bad))
        stale = _fake_report()
        stale["format_version"] = FORMAT_VERSION + 1
        versioned = tmp_path / "stale.json"
        versioned.write_text(json.dumps(stale))
        with pytest.raises(ValueError, match="format_version"):
            load_report(str(versioned))


class TestRegressionGate:
    def test_clean_run_passes(self, tmp_path):
        base = tmp_path / "base.json"
        write_report(_fake_report(), str(base))
        assert check_report(_fake_report(), baseline_path=str(base)) == []

    def test_regressed_metric_fails(self, tmp_path):
        base = tmp_path / "base.json"
        write_report(_fake_report(), str(base))
        slow = _fake_report(**{"policy.updates_per_sec": 0.5})
        failures = check_report(slow, baseline_path=str(base), tolerance=0.5)
        assert len(failures) == 1
        assert "policy.updates_per_sec regressed" in failures[0]

    def test_tolerance_absorbs_machine_jitter(self, tmp_path):
        base = tmp_path / "base.json"
        write_report(_fake_report(), str(base))
        jittery = _fake_report(**{"policy.updates_per_sec": 1.1})
        assert check_report(jittery, baseline_path=str(base), tolerance=0.5) == []

    def test_schema_evolution_skips_one_sided_metrics(self, tmp_path):
        base = tmp_path / "base.json"
        old = _fake_report(**{"retired.lane": 1000.0})
        write_report(old, str(base))
        new = _fake_report(**{"added.lane": 1.0})
        assert check_report(new, baseline_path=str(base)) == []

    def test_min_speedup_gate(self):
        assert check_report(_fake_report(), min_speedup=3.0) == []
        failures = check_report(
            _fake_report(**{SPEEDUP_GATE_METRIC: 1.5}), min_speedup=3.0
        )
        assert len(failures) == 1 and "below the required" in failures[0]

    def test_missing_gate_metric_fails(self):
        report = _fake_report()
        del report["metrics"][SPEEDUP_GATE_METRIC]
        assert check_report(report, min_speedup=3.0) != []


@pytest.mark.slow
class TestCliExitCodes:
    """`repro bench-micro` exits nonzero on regression — the CI contract."""

    def _run(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = _REPO_SRC
        return subprocess.run(
            [sys.executable, "-m", "repro", "bench-micro",
             "--batch", "8", "--repeats", "1", *args],
            cwd=cwd, env=env, capture_output=True, text=True,
        )

    def test_bench_writes_report_and_gates(self, tmp_path):
        ok = self._run(["--out", "out.json"], cwd=tmp_path)
        assert ok.returncode == 0, ok.stderr
        report = load_report(str(tmp_path / "out.json"))
        assert SPEEDUP_GATE_METRIC in report["metrics"]

        # An impossible baseline must flip the exit code to 1.
        impossible = {
            name: value * 1e9 for name, value in report["metrics"].items()
        }
        report["metrics"] = impossible
        write_report(report, str(tmp_path / "impossible.json"))
        bad = self._run(
            ["--out", "out2.json", "--baseline", "impossible.json",
             "--tolerance", "0.5"],
            cwd=tmp_path,
        )
        assert bad.returncode == 1
        assert "regressed" in bad.stdout + bad.stderr
