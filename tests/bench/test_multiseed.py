"""Tests for the best-of-N-seeds runner logic and the device prior."""

import numpy as np

from repro.bench import ExperimentRunner, ExperimentSpec, default_spec
from repro.bench.experiments import CPU_PRIOR, device_prior
from repro.sim import Topology


class TestDevicePrior:
    def test_default_topology_convention(self):
        prior = device_prior(5)
        assert prior[0] == CPU_PRIOR
        assert np.all(prior[1:] == 0.0)

    def test_explicit_topology(self):
        topo = Topology.default_4gpu(num_gpus=2)
        prior = device_prior(topo.num_devices, topo)
        assert prior[topo.cpu_indices()[0]] == CPU_PRIOR
        for g in topo.gpu_indices():
            assert prior[g] == 0.0


class TestMultiSeedSpec:
    def test_gnmt_rl_specs_get_extra_seeds(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_spec("gnmt", "post", "ppo_ce").num_seeds == 2
        assert default_spec("gnmt", "eagle", "ppo").num_seeds == 4
        assert default_spec("gnmt", "human_expert", "none").num_seeds == 1
        assert default_spec("bert", "eagle", "ppo").num_seeds == 1

    def test_quick_profile_single_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert default_spec("gnmt", "eagle", "ppo").num_seeds == 1

    def test_key_backwards_compatible_for_single_seed(self):
        """num_seeds=1 must hash like the pre-num_seeds schema (old caches
        stay valid); other values must change the key."""
        one = ExperimentSpec("gnmt", "eagle", "ppo", 64, 100, num_seeds=1)
        two = ExperimentSpec("gnmt", "eagle", "ppo", 64, 100, num_seeds=2)
        assert one.key() != two.key()

    def test_multi_seed_keeps_best(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        runner = ExperimentRunner(tmp_path)
        single = runner.run(
            ExperimentSpec("inception_v3", "post", "ppo_ce", num_groups=8,
                           max_samples=15, placer_hidden=16, scale="quick", num_seeds=1)
        )
        multi = runner.run(
            ExperimentSpec("inception_v3", "post", "ppo_ce", num_groups=8,
                           max_samples=15, placer_hidden=16, scale="quick", num_seeds=3)
        )
        assert multi.final_time <= single.final_time + 1e-12
