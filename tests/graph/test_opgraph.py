"""Tests for OpGraph / TensorSpec / GroupedGraph."""

import pytest

from repro.graph.opgraph import OpGraph, TensorSpec


class TestTensorSpec:
    def test_bytes(self):
        assert TensorSpec((2, 3), dtype_bytes=4).bytes == 24

    def test_scalar_shape(self):
        assert TensorSpec(()).num_elements == 1

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((2, -1))

    def test_bad_dtype_bytes_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((2,), dtype_bytes=0)


class TestConstruction:
    def test_add_op_assigns_dense_ids(self, small_graph):
        assert [n.op_id for n in small_graph.nodes()] == [0, 1, 2, 3]

    def test_duplicate_name_rejected(self):
        g = OpGraph()
        g.add_op("a", "Relu", (1,))
        with pytest.raises(ValueError):
            g.add_op("a", "Relu", (1,))

    def test_edges_by_name_and_node(self):
        g = OpGraph()
        a = g.add_op("a", "Input", (1,))
        g.add_op("b", "Relu", (1,), inputs=["a"])
        g.add_op("c", "Relu", (1,), inputs=[a])
        assert g.has_edge("a", "b") and g.has_edge(0, 2)

    def test_self_edge_rejected(self):
        g = OpGraph()
        g.add_op("a", "Relu", (1,))
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_duplicate_edge_deduplicated(self):
        g = OpGraph()
        g.add_op("a", "Input", (1,))
        g.add_op("b", "Relu", (1,), inputs=["a", "a"])
        assert g.num_edges == 1

    def test_unknown_name_raises(self, small_graph):
        with pytest.raises(KeyError):
            small_graph.node("missing")

    def test_out_of_range_id_raises(self, small_graph):
        with pytest.raises(IndexError):
            small_graph.node(99)

    def test_negative_attrs_rejected(self):
        g = OpGraph()
        with pytest.raises(ValueError):
            g.add_op("a", "Relu", (1,), flops=-1)

    def test_contains(self, small_graph):
        assert "in" in small_graph
        assert "nope" not in small_graph


class TestTopology:
    def test_topological_order_respects_edges(self, layered_graph):
        order = layered_graph.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for s, d in layered_graph.edges():
            assert pos[s] < pos[d]

    def test_cycle_detection(self):
        g = OpGraph()
        g.add_op("a", "Relu", (1,))
        g.add_op("b", "Relu", (1,), inputs=["a"])
        g.add_edge("b", "a")
        with pytest.raises(ValueError):
            g.topological_order()

    def test_validate_passes_on_dag(self, small_graph):
        small_graph.validate()

    def test_topo_cache_invalidated_by_new_edges(self):
        g = OpGraph()
        g.add_op("a", "Relu", (1,))
        g.add_op("b", "Relu", (1,))
        g.topological_order()  # populate the cache
        g.add_edge("b", "a")
        second = g.topological_order()
        assert second.index(1) < second.index(0)


class TestAccessors:
    def test_edge_bytes_uses_source_output(self, small_graph):
        assert small_graph.edge_bytes("in", "left") == 4 * 8 * 4

    def test_edge_bytes_missing_edge(self, small_graph):
        with pytest.raises(KeyError):
            small_graph.edge_bytes("left", "right")

    def test_totals(self, small_graph):
        assert small_graph.total_flops() == pytest.approx(1e6 + 32 + 96)
        assert small_graph.total_param_bytes() == 512

    def test_adjacency_matrix(self, small_graph):
        a = small_graph.adjacency_matrix()
        assert a.shape == (4, 4)
        assert a[0, 1] == 1.0 and a[1, 0] == 0.0

    def test_weighted_adjacency(self, small_graph):
        a = small_graph.adjacency_matrix(weighted=True)
        assert a[0, 1] == small_graph.node("in").output.bytes

    def test_to_networkx(self, small_graph):
        nxg = small_graph.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == small_graph.num_edges
        assert nxg.nodes[1]["op_type"] == "MatMul"

    def test_op_types_sorted(self, small_graph):
        assert small_graph.op_types() == sorted(small_graph.op_types())


class TestGroupedGraph:
    def test_group_aggregates(self, small_graph):
        gg = small_graph.coarsen([0, 0, 1, 1], num_groups=2)
        assert gg.group_sizes.tolist() == [2, 2]
        assert gg.group_flops[0] == pytest.approx(1e6)
        assert gg.group_cpu_only[0]  # contains the Input op

    def test_comm_matrix_counts_cross_edges(self, small_graph):
        gg = small_graph.coarsen([0, 0, 1, 1], num_groups=2)
        # in->right crosses (0->1), left->out crosses (0->1)
        assert gg.comm_matrix[0, 1] > 0
        assert gg.comm_matrix[1, 0] == 0

    def test_cut_zero_when_single_group(self, small_graph):
        gg = small_graph.coarsen([0, 0, 0, 0], num_groups=1)
        assert gg.cut_bytes() == 0.0

    def test_assignment_length_checked(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.coarsen([0, 1])

    def test_group_id_out_of_range(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.coarsen([0, 0, 0, 5], num_groups=2)

    def test_group_members(self, small_graph):
        gg = small_graph.coarsen([0, 1, 0, 1], num_groups=2)
        assert gg.group_members(0) == [0, 2]
