"""Tests for the benchmark model builders and cost helpers."""

import numpy as np
import pytest

from repro.graph import costs
from repro.graph.models import (
    build_benchmark,
    build_bert,
    build_chain,
    build_fan,
    build_gnmt,
    build_inception_v3,
    build_random_layered,
)


class TestCostHelpers:
    def test_conv_out_shape_same(self):
        assert costs.conv2d_out_shape((1, 35, 35, 64), 96, (3, 3)) == (1, 35, 35, 96)

    def test_conv_out_shape_valid_stride(self):
        assert costs.conv2d_out_shape((1, 299, 299, 3), 32, (3, 3), 2, "valid") == (1, 149, 149, 32)

    def test_conv_collapse_raises(self):
        with pytest.raises(ValueError):
            costs.conv2d_out_shape((1, 2, 2, 3), 8, (5, 5), 1, "valid")

    def test_conv_unknown_padding(self):
        with pytest.raises(ValueError):
            costs.conv2d_out_shape((1, 8, 8, 3), 8, (3, 3), 1, "weird")

    def test_conv_flops_formula(self):
        out = (1, 10, 10, 16)
        f = costs.conv2d_flops((1, 10, 10, 8), out, (3, 3))
        assert f == 2 * 10 * 10 * 16 * 9 * 8

    def test_matmul_flops(self):
        assert costs.matmul_flops(2, 3, 4) == 48

    def test_lstm_flops_positive_and_scales(self):
        small = costs.lstm_cell_flops(1, 10, 10)
        big = costs.lstm_cell_flops(2, 10, 10)
        assert big == pytest.approx(2 * small, rel=0.01)

    def test_pool_out_shape(self):
        assert costs.pool_out_shape((1, 35, 35, 64), 3, 2) == (1, 17, 17, 64)


class TestInception:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_inception_v3()

    def test_is_valid_dag(self, graph):
        graph.validate()

    def test_op_count_realistic(self, graph):
        assert 250 <= graph.num_ops <= 500

    def test_total_flops_near_published(self, graph):
        # Inception-V3 forward ≈ 5.7 G multiply-adds at batch 1; we count a
        # MAC as 2 FLOPs, so ≈ 11.4 GFLOP (±40 % for the simplified head).
        assert 7e9 <= graph.total_flops() <= 1.6e10

    def test_param_bytes_near_published(self, graph):
        # ~24 M parameters * 4 bytes.
        assert 70e6 <= graph.total_param_bytes() <= 130e6

    def test_input_is_cpu_only(self, graph):
        assert graph.node("images").cpu_only

    def test_batch_size_parameter(self):
        g = build_inception_v3(batch_size=4)
        assert g.node("head/logits/matmul").output.shape[0] == 4

    def test_has_expected_blocks(self, graph):
        names = [n.name for n in graph.nodes()]
        assert any("mixed_a0" in n for n in names)
        assert any("reduction_b" in n for n in names)
        assert any("mixed_c1" in n for n in names)


class TestGNMT:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_gnmt(seq_len=8, batch_size=32, hidden=64, vocab=1000)

    def test_is_valid_dag(self, graph):
        graph.validate()

    def test_lstm_steps_chained(self, graph):
        # step t depends on step t-1 within a layer
        assert graph.has_edge("encoder/l1/step0", "encoder/l1/step1")

    def test_decoder_consumes_attention(self, graph):
        assert "attention/context0" in graph
        assert graph.has_edge("attention/context0", "decoder/input_concat0")

    def test_embeddings_cpu_only(self, graph):
        assert graph.node("encoder/embedding").cpu_only

    def test_layer_count_parameter(self):
        g = build_gnmt(seq_len=4, batch_size=8, hidden=32, vocab=100, num_layers=2)
        assert not any("encoder/l2/" in n.name for n in g.nodes())

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            build_gnmt(num_layers=1)

    def test_default_memory_exceeds_single_gpu(self):
        """The paper's batch-256 training configuration must not fit one
        P100 (§IV-A); the memory model is defined over the expanded
        training graph."""
        g = build_benchmark("gnmt")
        from repro.sim import Simulator, Topology

        sim = Simulator(g, Topology.default_4gpu())
        usage = sim.memory_usage(np.ones(g.num_ops, dtype=np.int64))
        assert usage[1] > sim.topology.devices[1].memory_bytes

    def test_batch_128_fits_single_gpu(self):
        g = build_benchmark("gnmt", batch_size=128)
        from repro.sim import Simulator, Topology

        sim = Simulator(g, Topology.default_4gpu())
        usage = sim.memory_usage(np.ones(g.num_ops, dtype=np.int64))
        assert usage[1] <= sim.topology.devices[1].memory_bytes


class TestBERT:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_bert(num_layers=2, seq_len=64, batch_size=4, split_heads=True)

    def test_is_valid_dag(self, graph):
        graph.validate()

    def test_per_head_ops_emitted(self, graph):
        assert "layer0/attention/head0/scores" in graph
        assert "layer0/attention/head11/context" in graph

    def test_merged_heads_feed_output(self, graph):
        assert graph.has_edge("layer0/attention/heads/concat", "layer0/attention/output/matmul")

    def test_coarse_variant_smaller(self):
        fine = build_bert(num_layers=2, seq_len=64, batch_size=4, split_heads=True)
        coarse = build_bert(num_layers=2, seq_len=64, batch_size=4, split_heads=False)
        assert coarse.num_ops < fine.num_ops

    def test_hidden_head_divisibility(self):
        with pytest.raises(ValueError):
            build_bert(hidden=100, num_heads=12)

    def test_default_params_near_bert_base(self):
        g = build_bert()
        # BERT-Base ≈ 110 M params ≈ 440 MB (+ the untied MLM projection).
        assert 350e6 <= g.total_param_bytes() <= 700e6


class TestRandomGraphs:
    def test_layered_is_dag(self):
        build_random_layered(num_layers=8, width=6, seed=3).validate()

    def test_layered_deterministic_per_seed(self):
        a = build_random_layered(seed=5)
        b = build_random_layered(seed=5)
        assert [n.name for n in a.nodes()] == [n.name for n in b.nodes()]
        assert sorted(a.edges()) == sorted(b.edges())

    def test_layered_params_validated(self):
        with pytest.raises(ValueError):
            build_random_layered(num_layers=0)

    def test_chain_structure(self):
        g = build_chain(length=5)
        assert g.num_ops == 6
        assert g.num_edges == 5

    def test_fan_structure(self):
        g = build_fan(width=4)
        assert g.num_ops == 6
        # all branches readable from input, all feed the sink
        assert len(g.successors("input")) == 4
        assert len(g.predecessors("sink")) == 4


class TestBuildBenchmark:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_benchmark("alexnet")

    def test_training_expansion_default(self):
        fwd = build_benchmark("inception_v3", training=False)
        train = build_benchmark("inception_v3", training=True)
        assert train.num_ops > 1.8 * fwd.num_ops

    def test_kwargs_forwarded(self):
        g = build_benchmark("gnmt", training=False, seq_len=4, batch_size=8, hidden=32, vocab=100)
        assert g.num_ops < 400
