"""Tests for the measurement-space fingerprints."""

from repro.graph import (
    graph_fingerprint,
    placement_space_fingerprint,
    topology_fingerprint,
)
from repro.graph.models import build_chain, build_random_layered
from repro.sim import CostModel, LinkSpec, Topology


def test_graph_fingerprint_is_stable_and_content_keyed():
    a = build_random_layered(num_layers=6, width=5, seed=7)
    b = build_random_layered(num_layers=6, width=5, seed=7)
    c = build_random_layered(num_layers=6, width=5, seed=8)
    assert graph_fingerprint(a) == graph_fingerprint(b)
    assert graph_fingerprint(a) != graph_fingerprint(c)
    assert len(graph_fingerprint(a)) == 64  # sha256 hex


def test_graph_fingerprint_sees_node_attributes():
    a = build_chain(length=4)
    b = build_chain(length=4)
    assert graph_fingerprint(a) == graph_fingerprint(b)
    b.node(1).flops += 1.0
    assert graph_fingerprint(a) != graph_fingerprint(b)


def test_topology_fingerprint_sees_devices_and_links():
    a = Topology.default_4gpu(num_gpus=2)
    b = Topology.default_4gpu(num_gpus=2)
    assert topology_fingerprint(a) == topology_fingerprint(b)
    assert topology_fingerprint(a) != topology_fingerprint(
        Topology.default_4gpu(num_gpus=4)
    )
    assert topology_fingerprint(a) != topology_fingerprint(
        Topology.default_4gpu(num_gpus=2, gpu_memory_bytes=1 << 30)
    )
    with_link = Topology(
        a.devices, a.default_link, links={(0, 1): LinkSpec(1e9, 1e-6)}
    )
    assert topology_fingerprint(a) != topology_fingerprint(with_link)


def test_placement_space_fingerprint_covers_all_inputs():
    graph = build_random_layered(num_layers=4, width=4, seed=3)
    topo = Topology.default_4gpu(num_gpus=2)
    base = placement_space_fingerprint(graph, topo, CostModel())
    assert base == placement_space_fingerprint(graph, topo, CostModel())
    other_graph = build_random_layered(num_layers=4, width=4, seed=4)
    assert base != placement_space_fingerprint(other_graph, topo, CostModel())
    other_topo = Topology.default_4gpu(num_gpus=3)
    assert base != placement_space_fingerprint(graph, other_topo, CostModel())
    other_cost = CostModel(gpu_dispatch=1e-3)
    assert base != placement_space_fingerprint(graph, topo, other_cost)
    # cost model optional: still deterministic, still graph/topology-keyed
    assert placement_space_fingerprint(graph, topo) == placement_space_fingerprint(
        graph, topo
    )
    assert placement_space_fingerprint(graph, topo) != base
