"""Tests for the additional model families (ResNet-50, Transformer)."""

import numpy as np
import pytest

from repro.graph.models import build_benchmark, build_resnet50, build_transformer


class TestResNet50:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_resnet50(batch_size=8, image_size=64)

    def test_is_valid_dag(self, graph):
        graph.validate()

    def test_stage_structure(self, graph):
        names = [n.name for n in graph.nodes()]
        assert any("stage0/block2" in n for n in names)
        assert any("stage3/block2" in n for n in names)
        assert not any("stage3/block3" in n for n in names)

    def test_residual_adds_present(self, graph):
        adds = [n for n in graph.nodes() if n.op_type == "Add"]
        assert len(adds) == 16  # one per bottleneck block

    def test_projection_shortcuts_only_at_stage_starts(self, graph):
        shortcuts = [n.name for n in graph.nodes() if "/shortcut/" in n.name and "conv2d" in n.name]
        assert len(shortcuts) == 4

    def test_param_count_near_published(self):
        g = build_resnet50()
        # ResNet-50 ≈ 25.5 M params ≈ 102 MB.
        assert 80e6 <= g.total_param_bytes() <= 130e6

    def test_flops_near_published(self):
        g = build_resnet50(batch_size=1)
        # ≈ 4.1 G MACs = 8.2 GFLOP per image (±35 %).
        assert 5e9 <= g.total_flops() <= 12e9


class TestTransformer:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_transformer(
            batch_size=4, src_len=16, tgt_len=16, hidden=64, num_layers=2, num_heads=4,
            ffn_dim=128, vocab=500,
        )

    def test_is_valid_dag(self, graph):
        graph.validate()

    def test_cross_attention_connects_encoder_to_decoder(self, graph):
        # the decoder's cross-attention key comes from the encoder output
        assert "decoder/layer0/cross_attn/key/matmul" in graph
        key = graph.node("decoder/layer0/cross_attn/key/matmul")
        preds = graph.predecessors(key)
        pred_names = {graph.node(p).name for p in preds}
        assert any(name.startswith("encoder/") for name in pred_names)

    def test_self_and_cross_attention_per_decoder_layer(self, graph):
        names = [n.name for n in graph.nodes()]
        for layer in range(2):
            assert any(f"decoder/layer{layer}/self_attn" in n for n in names)
            assert any(f"decoder/layer{layer}/cross_attn" in n for n in names)

    def test_head_divisibility_checked(self):
        with pytest.raises(ValueError):
            build_transformer(hidden=100, num_heads=8)

    def test_benchmark_registry(self):
        g = build_benchmark("transformer", training=False, batch_size=2, src_len=8,
                            tgt_len=8, hidden=32, num_layers=1, num_heads=2,
                            ffn_dim=64, vocab=100)
        assert g.num_ops > 30

    def test_placeable(self):
        """The extra models run through the whole pipeline."""
        from repro.sim import PlacementEnvironment, Topology

        g = build_benchmark("transformer", batch_size=2, src_len=8, tgt_len=8,
                            hidden=32, num_layers=1, num_heads=2, ffn_dim=64, vocab=100)
        env = PlacementEnvironment(g, Topology.default_4gpu(num_gpus=2))
        m = env.evaluate(np.ones(g.num_ops, dtype=np.int64))
        assert m.valid
