"""Tests for the training-graph expansion (backward + optimizer ops)."""

import pytest

from repro.graph.models import build_chain, build_fan
from repro.graph.opgraph import OpGraph
from repro.graph.training import expand_training_graph


@pytest.fixture
def fwd():
    g = OpGraph("toy")
    a = g.add_op("in", "Input", (2, 4), cpu_only=True)
    b = g.add_op("fc", "MatMul", (2, 8), flops=1e4, param_bytes=128, inputs=[a])
    g.add_op("act", "Relu", (2, 8), flops=16, inputs=[b])
    return g


class TestExpansion:
    def test_forward_ids_preserved(self, fwd):
        train = expand_training_graph(fwd)
        for node in fwd.nodes():
            assert train.node(node.op_id).name == node.name

    def test_grad_ops_created_except_inputs(self, fwd):
        train = expand_training_graph(fwd)
        assert "fc:grad" in train and "act:grad" in train
        assert "in:grad" not in train

    def test_grad_flops_doubled(self, fwd):
        train = expand_training_graph(fwd)
        assert train.node("fc:grad").flops == 2 * fwd.node("fc").flops

    def test_movement_op_grad_not_doubled(self):
        g = OpGraph()
        a = g.add_op("a", "Relu", (4,), flops=10)
        g.add_op("c", "Concat", (8,), flops=8, inputs=[a])
        train = expand_training_graph(g)
        assert train.node("c:grad").flops == 8

    def test_backward_reverses_dependencies(self, fwd):
        train = expand_training_graph(fwd)
        # act:grad must precede fc:grad (reverse of fc -> act)
        assert train.has_edge("act:grad", "fc:grad")
        # and each grad op depends on its forward activation
        assert train.has_edge("fc", "fc:grad")

    def test_update_ops_for_params_only(self, fwd):
        train = expand_training_graph(fwd)
        assert "fc:update" in train
        assert "act:update" not in train

    def test_update_colocated_with_forward(self, fwd):
        train = expand_training_graph(fwd)
        assert train.node("fc").colocation_group == train.node("fc:update").colocation_group
        assert train.node("fc").colocation_group is not None

    def test_optimizer_ops_disabled(self, fwd):
        train = expand_training_graph(fwd, optimizer_ops=False)
        assert "fc:update" not in train

    def test_result_is_valid_dag(self):
        expand_training_graph(build_fan(width=5)).validate()
        expand_training_graph(build_chain(length=10)).validate()

    def test_op_count_roughly_doubles(self):
        g = build_chain(length=20)
        train = expand_training_graph(g, optimizer_ops=False)
        # every non-input op gains a grad op
        assert train.num_ops == g.num_ops + (g.num_ops - 1)

    def test_cpu_only_inherited(self):
        g = OpGraph()
        g.add_op("gather", "Gather", (4,), flops=4, cpu_only=True, param_bytes=64)
        train = expand_training_graph(g)
        assert train.node("gather:grad").cpu_only
        assert train.node("gather:update").cpu_only

    def test_grad_output_bytes_match_forward(self, fwd):
        train = expand_training_graph(fwd)
        assert train.node("fc:grad").output.bytes == fwd.node("fc").output.bytes
