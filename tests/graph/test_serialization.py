"""Tests for OpGraph JSON serialisation and summaries."""

import numpy as np
import pytest

from repro.graph.serialization import (
    graph_from_dict,
    graph_summary,
    graph_to_dict,
    load_graph,
    save_graph,
)


class TestRoundTrip:
    def test_structure_preserved(self, layered_graph):
        back = graph_from_dict(graph_to_dict(layered_graph))
        assert back.num_ops == layered_graph.num_ops
        assert sorted(back.edges()) == sorted(layered_graph.edges())
        for a, b in zip(layered_graph.nodes(), back.nodes()):
            assert (a.name, a.op_type, a.output.shape, a.flops, a.param_bytes, a.cpu_only) == (
                b.name,
                b.op_type,
                b.output.shape,
                b.flops,
                b.param_bytes,
                b.cpu_only,
            )

    def test_colocation_preserved(self):
        from repro.graph.opgraph import OpGraph

        g = OpGraph("colo")
        g.add_op("a", "MatMul", (2,), colocation_group="x")
        back = graph_from_dict(graph_to_dict(g))
        assert back.node("a").colocation_group == "x"

    def test_file_roundtrip(self, layered_graph, tmp_path):
        path = str(tmp_path / "g.json")
        save_graph(layered_graph, path)
        back = load_graph(path)
        assert back.num_ops == layered_graph.num_ops

    def test_version_checked(self, layered_graph):
        data = graph_to_dict(layered_graph)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(data)

    def test_simulation_equivalence(self, layered_graph):
        """The round-tripped graph must simulate identically."""
        from repro.sim import Simulator, Topology

        topo = Topology.default_4gpu(num_gpus=2)
        back = graph_from_dict(graph_to_dict(layered_graph))
        p = np.ones(layered_graph.num_ops, dtype=np.int64)
        assert Simulator(layered_graph, topo).step_time(p) == Simulator(back, topo).step_time(p)


class TestSummary:
    def test_mentions_totals_and_types(self, layered_graph):
        text = graph_summary(layered_graph)
        assert layered_graph.name in text
        assert "GFLOP" in text and "op types" in text
