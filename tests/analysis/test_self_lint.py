"""The repo must lint clean against its own rules.

This is the merge gate: any commit that introduces a wall-clock read, an
unseeded RNG draw, a drifted callback/backend/protocol contract, or an
unjustified pragma fails here before it fails in CI.
"""

from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfLint:
    def test_repo_is_clean(self):
        result = lint_paths(
            [
                str(REPO_ROOT / "src" / "repro"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "examples"),
            ]
        )
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.findings == [], f"repo must self-lint clean:\n{rendered}"
        # The sweep must actually have covered the tree.
        assert result.files_scanned > 100

    def test_src_alone_is_clean(self):
        result = lint_paths([str(REPO_ROOT / "src" / "repro")])
        assert result.findings == []
        assert result.errors == 0 and result.warnings == 0
