"""Fixture tests for the contract rules.

The contract tables are AST-extracted from the real definition sites
(events.py / backends.py / protocol.py), so these tests double as a check
that extraction found the actual contracts.
"""

import pytest

from repro.analysis import ContractIndex, lint_source

CORE_PATH = "src/repro/core/fixture.py"
SERVICE_PATH = "src/repro/service/fixture.py"


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestContractExtraction:
    def test_callback_hooks_extracted(self, contracts):
        sigs = contracts.callback_signatures
        assert sigs["on_measurement"] == ["self", "engine", "sample", "measurement"]
        assert sigs["on_search_start"] == ["self", "engine"]
        assert "on_search_end" in sigs

    def test_backend_surface_extracted(self, contracts):
        surface = contracts.backend_methods
        assert surface["evaluate_batch"] == ["self", "placements"]
        assert set(surface) >= {"evaluate_batch", "close", "stats"}

    def test_message_schema_extracted(self, contracts):
        assert set(contracts.message_schema) == {
            "hello", "ping", "resume", "evaluate", "evaluate_batch",
            "stats", "spaces", "shutdown", "migrate_space",
        }
        assert "fingerprint" in contracts.request_fields["hello"]
        assert "batch" in contracts.request_fields["evaluate_batch"]
        assert "raw" in contracts.response_fields
        assert "replayed" in contracts.response_fields

    def test_dispatch_and_constructors_extracted(self, contracts):
        # every schema op dispatches and has exactly one client constructor
        assert set(contracts.server_dispatch) == set(contracts.message_schema)
        assert set(contracts.server_dispatch.values()) <= contracts.server_methods
        assert contracts.client_constructors == {
            op: 1 for op in contracts.message_schema
        }

    def test_admin_plane_extracted(self, contracts):
        assert set(contracts.admin_schema) == {
            "stats", "join", "leave", "membership", "migrate",
        }
        assert set(contracts.router_dispatch) == set(contracts.admin_schema)
        assert set(contracts.router_dispatch.values()) <= contracts.router_methods
        assert "backend" in contracts.admin_schema["join"]["request"]
        # overlapping "stats" op merges rather than shadows
        combined = contracts.combined_schema
        assert set(contracts.message_schema["stats"]["response"]) <= set(
            combined["stats"]["response"]
        )
        assert "stats" in combined["stats"]["response"]


class TestCallbackSignature:
    def test_drifted_override_flagged(self, contracts):
        src = (
            "from repro.core import SearchCallback\n\n"
            "class C(SearchCallback):\n"
            "    def on_measurement(self, engine, sample):\n"
            "        pass\n"
        )
        assert rule_ids(lint_source(src, CORE_PATH, contracts)) == ["callback-signature"]

    def test_unknown_hook_flagged(self, contracts):
        src = (
            "from repro.core import SearchCallback\n\n"
            "class C(SearchCallback):\n"
            "    def on_measurment(self, engine, sample, measurement):\n"
            "        pass\n"
        )
        assert rule_ids(lint_source(src, CORE_PATH, contracts)) == ["callback-signature"]

    def test_conforming_override_clean(self, contracts):
        src = (
            "from repro.core import SearchCallback\n\n"
            "class C(SearchCallback):\n"
            "    def on_measurement(self, engine, sample, measurement):\n"
            "        pass\n"
            "    def on_search_end(self, engine, result):\n"
            "        pass\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []

    def test_non_callback_class_ignored(self, contracts):
        src = "class C:\n    def on_anything(self, x):\n        pass\n"
        assert lint_source(src, CORE_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "from repro.core import SearchCallback\n\n"
            "class C(SearchCallback):\n"
            "    # repro: allow[callback-signature] adapter shims the legacy arity on purpose\n"
            "    def on_measurement(self, engine, sample):\n"
            "        pass\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []


class TestBackendProtocol:
    def test_missing_surface_flagged(self, contracts):
        src = (
            "from repro.sim.backends import EvaluationBackend\n\n"
            "class Bad(EvaluationBackend):\n"
            "    def evaluate_batch(self, placements):\n"
            "        return []\n"
        )
        ids = rule_ids(lint_source(src, CORE_PATH, contracts))
        assert ids == ["backend-protocol", "backend-protocol"]  # close + stats

    def test_structural_claimant_drift_flagged(self, contracts):
        src = (
            "class S:\n"
            "    def evaluate_batch(self, batch):\n"
            "        return []\n"
            "    def close(self):\n"
            "        pass\n"
            "    def stats(self):\n"
            "        return {}\n"
        )
        assert rule_ids(lint_source(src, CORE_PATH, contracts)) == ["backend-protocol"]

    def test_prepare_batch_drift_flagged(self, contracts):
        src = (
            "class S:\n"
            "    def evaluate_batch(self, placements):\n"
            "        return []\n"
            "    def close(self):\n"
            "        pass\n"
            "    def stats(self):\n"
            "        return {}\n"
            "    def prepare_batch(self, placements, eager):\n"
            "        pass\n"
        )
        assert rule_ids(lint_source(src, CORE_PATH, contracts)) == ["backend-protocol"]

    def test_full_surface_clean(self, contracts):
        src = (
            "class S:\n"
            "    def evaluate_batch(self, placements):\n"
            "        return []\n"
            "    def close(self):\n"
            "        pass\n"
            "    def stats(self):\n"
            "        return {}\n"
            "    def prepare_batch(self, placements):\n"
            "        pass\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []


class TestProtocolSchema:
    def test_unknown_field_flagged(self, contracts):
        src = 'def f(p):\n    return {"op": "evaluate", "placment": p}\n'
        assert rule_ids(lint_source(src, SERVICE_PATH, contracts)) == ["protocol-schema"]

    def test_unknown_op_flagged(self, contracts):
        src = 'def f():\n    return {"op": "frobnicate"}\n'
        assert rule_ids(lint_source(src, SERVICE_PATH, contracts)) == ["protocol-schema"]

    def test_unknown_get_read_flagged(self, contracts):
        src = 'def f(message):\n    return message.get("placment")\n'
        assert rule_ids(lint_source(src, SERVICE_PATH, contracts)) == ["protocol-schema"]

    def test_valid_message_clean(self, contracts):
        src = (
            'def f(p, fp):\n'
            '    hello = {"op": "hello", "version": 1, "fingerprint": fp}\n'
            '    return hello, {"op": "evaluate", "placement": p}\n'
        )
        assert lint_source(src, SERVICE_PATH, contracts) == []

    def test_schema_read_clean(self, contracts):
        src = 'def f(message):\n    return message.get("placements")\n'
        assert lint_source(src, SERVICE_PATH, contracts) == []

    def test_outside_service_ignored(self, contracts):
        # Tests construct deliberately-bad messages to exercise error paths.
        src = 'def f():\n    return {"op": "frobnicate"}\n'
        assert lint_source(src, "tests/service/fixture.py", contracts) == []

    def test_non_message_dict_ignored(self, contracts):
        src = 'def f():\n    return {"makespan": 1.0, "hits": 3}\n'
        assert lint_source(src, SERVICE_PATH, contracts) == []


class TestProtocolDispatch:
    """The cross-file rule: findings are synthesized from doctored contract
    tables and reported against the schema's home module."""

    PROTOCOL_PATH = "src/repro/service/protocol.py"
    #: A stand-in for protocol.py: the rule only needs the MESSAGE_SCHEMA
    #: assignment as its finding anchor — contracts supply the tables.
    HOME_SRC = "MESSAGE_SCHEMA = {}\n"

    @staticmethod
    def _doctor(contracts, **overrides):
        from repro.analysis import ContractIndex

        return ContractIndex(
            contracts.callback_signatures,
            contracts.backend_methods,
            contracts.message_schema,
            contracts.nested_fields,
            server_dispatch=overrides.get(
                "server_dispatch", contracts.server_dispatch
            ),
            server_methods=overrides.get(
                "server_methods", contracts.server_methods
            ),
            client_constructors=overrides.get(
                "client_constructors", contracts.client_constructors
            ),
            admin_schema=overrides.get("admin_schema", {}),
            router_dispatch=overrides.get("router_dispatch", {}),
            router_methods=overrides.get("router_methods", set()),
        )

    def test_repo_protocol_self_lints_clean(self, contracts):
        with open(self.PROTOCOL_PATH) as fh:
            src = fh.read()
        assert lint_source(src, self.PROTOCOL_PATH, contracts) == []

    def test_undispatched_op_flagged(self, contracts):
        dispatch = dict(contracts.server_dispatch)
        dispatch.pop("spaces")
        doctored = self._doctor(contracts, server_dispatch=dispatch)
        findings = lint_source(self.HOME_SRC, self.PROTOCOL_PATH, doctored)
        assert rule_ids(findings) == ["protocol-dispatch"]
        assert "no entry in the server's _OP_HANDLERS" in findings[0].message

    def test_dispatch_to_missing_method_flagged(self, contracts):
        dispatch = dict(contracts.server_dispatch, ping="_op_misspelled")
        doctored = self._doctor(contracts, server_dispatch=dispatch)
        findings = lint_source(self.HOME_SRC, self.PROTOCOL_PATH, doctored)
        assert rule_ids(findings) == ["protocol-dispatch"]
        assert "server.py does not define" in findings[0].message

    def test_missing_client_constructor_flagged(self, contracts):
        constructors = dict(contracts.client_constructors)
        constructors.pop("ping")
        doctored = self._doctor(contracts, client_constructors=constructors)
        findings = lint_source(self.HOME_SRC, self.PROTOCOL_PATH, doctored)
        assert rule_ids(findings) == ["protocol-dispatch"]
        assert "no client request constructor" in findings[0].message

    def test_forked_client_constructor_flagged(self, contracts):
        constructors = dict(contracts.client_constructors, ping=2)
        doctored = self._doctor(contracts, client_constructors=constructors)
        findings = lint_source(self.HOME_SRC, self.PROTOCOL_PATH, doctored)
        assert rule_ids(findings) == ["protocol-dispatch"]
        assert "2 client request constructors" in findings[0].message

    def test_stray_dispatch_op_flagged(self, contracts):
        dispatch = dict(contracts.server_dispatch, frobnicate="_op_frobnicate")
        doctored = self._doctor(contracts, server_dispatch=dispatch)
        findings = lint_source(self.HOME_SRC, self.PROTOCOL_PATH, doctored)
        assert rule_ids(findings) == ["protocol-dispatch"]
        assert "unknown op 'frobnicate'" in findings[0].message

    def test_outside_home_module_ignored(self, contracts):
        dispatch = dict(contracts.server_dispatch)
        dispatch.pop("spaces")
        doctored = self._doctor(contracts, server_dispatch=dispatch)
        assert lint_source(self.HOME_SRC, SERVICE_PATH, doctored) == []

    def test_fixture_trees_without_contract_sources_stay_silent(self, contracts):
        doctored = self._doctor(
            contracts, server_dispatch={}, client_constructors={}
        )
        assert lint_source(self.HOME_SRC, self.PROTOCOL_PATH, doctored) == []

    # ---- the router admin plane: ADMIN_SCHEMA ↔ _ADMIN_HANDLERS ----

    #: Admin findings anchor at the ADMIN_SCHEMA assignment when present.
    ADMIN_HOME_SRC = "MESSAGE_SCHEMA = {}\nADMIN_SCHEMA = {}\n"

    def _admin_doctor(self, contracts, **overrides):
        return self._doctor(
            contracts,
            admin_schema=overrides.get("admin_schema", contracts.admin_schema),
            router_dispatch=overrides.get(
                "router_dispatch", contracts.router_dispatch
            ),
            router_methods=overrides.get(
                "router_methods", contracts.router_methods
            ),
        )

    def test_real_admin_plane_clean(self, contracts):
        doctored = self._admin_doctor(contracts)
        assert lint_source(self.ADMIN_HOME_SRC, self.PROTOCOL_PATH, doctored) == []

    def test_unhandled_admin_op_flagged(self, contracts):
        dispatch = dict(contracts.router_dispatch)
        dispatch.pop("migrate")
        doctored = self._admin_doctor(contracts, router_dispatch=dispatch)
        findings = lint_source(self.ADMIN_HOME_SRC, self.PROTOCOL_PATH, doctored)
        assert rule_ids(findings) == ["protocol-dispatch"]
        assert "no entry in the router's _ADMIN_HANDLERS" in findings[0].message
        # anchored at the ADMIN_SCHEMA assignment, not MESSAGE_SCHEMA's
        assert findings[0].line == 2

    def test_admin_dispatch_to_missing_method_flagged(self, contracts):
        dispatch = dict(contracts.router_dispatch, join="_admin_misspelled")
        doctored = self._admin_doctor(contracts, router_dispatch=dispatch)
        findings = lint_source(self.ADMIN_HOME_SRC, self.PROTOCOL_PATH, doctored)
        assert rule_ids(findings) == ["protocol-dispatch"]
        assert "router.py does not define" in findings[0].message

    def test_stray_admin_dispatch_op_flagged(self, contracts):
        dispatch = dict(contracts.router_dispatch, evict="_admin_evict")
        doctored = self._admin_doctor(contracts, router_dispatch=dispatch)
        findings = lint_source(self.ADMIN_HOME_SRC, self.PROTOCOL_PATH, doctored)
        assert rule_ids(findings) == ["protocol-dispatch"]
        assert "not in ADMIN_SCHEMA" in findings[0].message

    def test_fixture_trees_without_admin_plane_stay_silent(self, contracts):
        doctored = self._admin_doctor(contracts, router_dispatch={})
        assert lint_source(self.ADMIN_HOME_SRC, self.PROTOCOL_PATH, doctored) == []


class TestCallbackHook:
    """Both directions of the dispatch↔hook bijection."""

    #: Stand-in for events.py: the every-hook-fires direction anchors its
    #: findings at the SearchCallback class definition.
    EVENTS_PATH = "src/repro/core/events.py"
    HOME_SRC = "class SearchCallback:\n    pass\n"

    @staticmethod
    def _doctor(contracts, **overrides):
        from repro.analysis import ContractIndex

        return ContractIndex(
            contracts.callback_signatures,
            contracts.backend_methods,
            contracts.message_schema,
            contracts.nested_fields,
            server_dispatch=contracts.server_dispatch,
            server_methods=contracts.server_methods,
            client_constructors=contracts.client_constructors,
            callback_fire_counts=overrides.get(
                "callback_fire_counts", contracts.callback_fire_counts
            ),
            internal_imports=contracts.internal_imports,
        )

    # ---- direction 1: every dispatch site names a hook, at hook arity ----

    def test_unknown_hook_dispatch_flagged(self, contracts):
        src = "def run(cb, engine):\n    cb.on_measurment(engine)\n"
        findings = lint_source(src, CORE_PATH, contracts)
        assert rule_ids(findings) == ["callback-hook"]
        assert "names no SearchCallback hook" in findings[0].message

    def test_arity_mismatch_flagged(self, contracts):
        # on_measurement takes (engine, sample, measurement) after self.
        src = "def run(cb, engine, sample):\n    cb.on_measurement(engine, sample)\n"
        findings = lint_source(src, CORE_PATH, contracts)
        assert rule_ids(findings) == ["callback-hook"]
        assert "passes 2 argument(s) but the hook takes 3" in findings[0].message

    def test_correct_dispatch_clean(self, contracts):
        src = (
            "def run(cb, engine, sample, m):\n"
            "    cb.on_measurement(engine, sample, m)\n"
            "    cb.on_search_start(engine)\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []

    def test_computed_call_shapes_skip_arity(self, contracts):
        src = (
            "def run(cb, engine, extra):\n"
            "    cb.on_measurement(engine, *extra)\n"
            "    cb.on_search_start(engine=engine)\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []

    def test_dispatch_in_service_scope_checked(self, contracts):
        src = "def run(cb, engine):\n    cb.on_no_such_hook(engine)\n"
        assert rule_ids(lint_source(src, SERVICE_PATH, contracts)) == ["callback-hook"]

    def test_outside_scope_ignored(self, contracts):
        src = "def run(cb, engine):\n    cb.on_no_such_hook(engine)\n"
        assert lint_source(src, "src/repro/sim/fixture.py", contracts) == []

    def test_pragma_suppresses_dispatch_finding(self, contracts):
        src = (
            "def run(cb, engine):\n"
            "    # repro: allow[callback-hook] legacy shim dispatches a retired hook\n"
            "    cb.on_no_such_hook(engine)\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []

    # ---- direction 2: every hook has at least one fire site ----

    def test_dead_hook_flagged_at_definition_site(self, contracts):
        fires = dict(contracts.callback_fire_counts)
        dead = sorted(contracts.callback_signatures)[0]
        fires.pop(dead, None)
        doctored = self._doctor(contracts, callback_fire_counts=fires or {"x": 1})
        findings = lint_source(self.HOME_SRC, self.EVENTS_PATH, doctored)
        assert rule_ids(findings) == ["callback-hook"]
        assert f"SearchCallback.{dead} has no dispatch site" in findings[0].message

    def test_all_hooks_fired_clean(self, contracts):
        fires = {name: 1 for name in contracts.callback_signatures}
        doctored = self._doctor(contracts, callback_fire_counts=fires)
        assert lint_source(self.HOME_SRC, self.EVENTS_PATH, doctored) == []

    def test_fixture_trees_without_fire_sites_stay_silent(self, contracts):
        doctored = self._doctor(contracts, callback_fire_counts={})
        assert lint_source(self.HOME_SRC, self.EVENTS_PATH, doctored) == []

    def test_fire_direction_only_reports_from_home_module(self, contracts):
        fires = {name: 0 for name in contracts.callback_signatures}
        doctored = self._doctor(contracts, callback_fire_counts=fires)
        assert lint_source(self.HOME_SRC, CORE_PATH, doctored) == []

    # ---- extraction sanity against the real tree ----

    def test_every_real_hook_has_a_fire_site(self, contracts):
        fired = {h for h, n in contracts.callback_fire_counts.items() if n > 0}
        assert set(contracts.callback_signatures) <= fired

    def test_fire_counts_exclude_events_py_mirror(self, contracts):
        # CallbackList fans every hook out; if events.py were counted the
        # check would be vacuously satisfied even with a dead engine.
        import ast as ast_mod

        tree = ast_mod.parse(open("src/repro/core/events.py").read())
        mirror_calls = sum(
            1
            for node in ast_mod.walk(tree)
            if isinstance(node, ast_mod.Call)
            and isinstance(node.func, ast_mod.Attribute)
            and node.func.attr.startswith("on_")
        )
        assert mirror_calls > 0  # the mirror exists...
        total_counted = sum(contracts.callback_fire_counts.values())
        assert total_counted > 0  # ...and real engine fire sites exist too
