"""Fixture tests for the contract rules.

The contract tables are AST-extracted from the real definition sites
(events.py / backends.py / protocol.py), so these tests double as a check
that extraction found the actual contracts.
"""

import pytest

from repro.analysis import ContractIndex, lint_source

CORE_PATH = "src/repro/core/fixture.py"
SERVICE_PATH = "src/repro/service/fixture.py"


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestContractExtraction:
    def test_callback_hooks_extracted(self, contracts):
        sigs = contracts.callback_signatures
        assert sigs["on_measurement"] == ["self", "engine", "sample", "measurement"]
        assert sigs["on_search_start"] == ["self", "engine"]
        assert "on_search_end" in sigs

    def test_backend_surface_extracted(self, contracts):
        surface = contracts.backend_methods
        assert surface["evaluate_batch"] == ["self", "placements"]
        assert set(surface) >= {"evaluate_batch", "close", "stats"}

    def test_message_schema_extracted(self, contracts):
        assert set(contracts.message_schema) == {
            "hello", "ping", "resume", "evaluate", "evaluate_batch",
            "stats", "shutdown",
        }
        assert "fingerprint" in contracts.request_fields["hello"]
        assert "batch" in contracts.request_fields["evaluate_batch"]
        assert "raw" in contracts.response_fields
        assert "replayed" in contracts.response_fields


class TestCallbackSignature:
    def test_drifted_override_flagged(self, contracts):
        src = (
            "from repro.core import SearchCallback\n\n"
            "class C(SearchCallback):\n"
            "    def on_measurement(self, engine, sample):\n"
            "        pass\n"
        )
        assert rule_ids(lint_source(src, CORE_PATH, contracts)) == ["callback-signature"]

    def test_unknown_hook_flagged(self, contracts):
        src = (
            "from repro.core import SearchCallback\n\n"
            "class C(SearchCallback):\n"
            "    def on_measurment(self, engine, sample, measurement):\n"
            "        pass\n"
        )
        assert rule_ids(lint_source(src, CORE_PATH, contracts)) == ["callback-signature"]

    def test_conforming_override_clean(self, contracts):
        src = (
            "from repro.core import SearchCallback\n\n"
            "class C(SearchCallback):\n"
            "    def on_measurement(self, engine, sample, measurement):\n"
            "        pass\n"
            "    def on_search_end(self, engine, result):\n"
            "        pass\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []

    def test_non_callback_class_ignored(self, contracts):
        src = "class C:\n    def on_anything(self, x):\n        pass\n"
        assert lint_source(src, CORE_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "from repro.core import SearchCallback\n\n"
            "class C(SearchCallback):\n"
            "    # repro: allow[callback-signature] adapter shims the legacy arity on purpose\n"
            "    def on_measurement(self, engine, sample):\n"
            "        pass\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []


class TestBackendProtocol:
    def test_missing_surface_flagged(self, contracts):
        src = (
            "from repro.sim.backends import EvaluationBackend\n\n"
            "class Bad(EvaluationBackend):\n"
            "    def evaluate_batch(self, placements):\n"
            "        return []\n"
        )
        ids = rule_ids(lint_source(src, CORE_PATH, contracts))
        assert ids == ["backend-protocol", "backend-protocol"]  # close + stats

    def test_structural_claimant_drift_flagged(self, contracts):
        src = (
            "class S:\n"
            "    def evaluate_batch(self, batch):\n"
            "        return []\n"
            "    def close(self):\n"
            "        pass\n"
            "    def stats(self):\n"
            "        return {}\n"
        )
        assert rule_ids(lint_source(src, CORE_PATH, contracts)) == ["backend-protocol"]

    def test_prepare_batch_drift_flagged(self, contracts):
        src = (
            "class S:\n"
            "    def evaluate_batch(self, placements):\n"
            "        return []\n"
            "    def close(self):\n"
            "        pass\n"
            "    def stats(self):\n"
            "        return {}\n"
            "    def prepare_batch(self, placements, eager):\n"
            "        pass\n"
        )
        assert rule_ids(lint_source(src, CORE_PATH, contracts)) == ["backend-protocol"]

    def test_full_surface_clean(self, contracts):
        src = (
            "class S:\n"
            "    def evaluate_batch(self, placements):\n"
            "        return []\n"
            "    def close(self):\n"
            "        pass\n"
            "    def stats(self):\n"
            "        return {}\n"
            "    def prepare_batch(self, placements):\n"
            "        pass\n"
        )
        assert lint_source(src, CORE_PATH, contracts) == []


class TestProtocolSchema:
    def test_unknown_field_flagged(self, contracts):
        src = 'def f(p):\n    return {"op": "evaluate", "placment": p}\n'
        assert rule_ids(lint_source(src, SERVICE_PATH, contracts)) == ["protocol-schema"]

    def test_unknown_op_flagged(self, contracts):
        src = 'def f():\n    return {"op": "frobnicate"}\n'
        assert rule_ids(lint_source(src, SERVICE_PATH, contracts)) == ["protocol-schema"]

    def test_unknown_get_read_flagged(self, contracts):
        src = 'def f(message):\n    return message.get("placment")\n'
        assert rule_ids(lint_source(src, SERVICE_PATH, contracts)) == ["protocol-schema"]

    def test_valid_message_clean(self, contracts):
        src = (
            'def f(p, fp):\n'
            '    hello = {"op": "hello", "version": 1, "fingerprint": fp}\n'
            '    return hello, {"op": "evaluate", "placement": p}\n'
        )
        assert lint_source(src, SERVICE_PATH, contracts) == []

    def test_schema_read_clean(self, contracts):
        src = 'def f(message):\n    return message.get("placements")\n'
        assert lint_source(src, SERVICE_PATH, contracts) == []

    def test_outside_service_ignored(self, contracts):
        # Tests construct deliberately-bad messages to exercise error paths.
        src = 'def f():\n    return {"op": "frobnicate"}\n'
        assert lint_source(src, "tests/service/fixture.py", contracts) == []

    def test_non_message_dict_ignored(self, contracts):
        src = 'def f():\n    return {"makespan": 1.0, "hits": 3}\n'
        assert lint_source(src, SERVICE_PATH, contracts) == []
