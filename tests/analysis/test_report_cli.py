"""JSON report schema, CLI exit codes, and the acceptance fixtures.

The four acceptance fixtures (wall-clock in sim code, unseeded
np.random.normal, drifted on_measurement override, unknown protocol
field) must each produce exactly the expected rule id in both the text
and the JSON output of ``repro lint``.
"""

import json

import pytest

from repro import cli
from repro.analysis import (
    JSON_REPORT_VERSION,
    ContractIndex,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    to_report_dict,
)
from repro.analysis.linter import LintResult


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def write_fixture(tmp_path, relpath, source):
    """Materialise a snippet at a repro-shaped path under a tmp dir."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestJsonReport:
    def test_report_shape(self, contracts):
        findings = lint_source(
            "import time\n\ndef f():\n    return time.time()\n",
            "src/repro/sim/bad.py",
            contracts,
        )
        report = to_report_dict(LintResult(findings, 1))
        assert report["version"] == JSON_REPORT_VERSION
        assert report["files_scanned"] == 1
        assert report["summary"] == {"errors": 1, "warnings": 0}
        # v2 schema: every run reports a fixes_applied block (all-zero
        # outside --fix) and every finding carries a "fixable" flag.
        assert report["fixes_applied"] == {
            "files_changed": 0, "total": 0, "by_fix": {},
        }
        (entry,) = report["findings"]
        assert set(entry) == {
            "path", "line", "col", "rule", "severity", "message", "fixable",
        }
        assert entry["rule"] == "wall-clock"
        assert entry["severity"] == "error"
        assert entry["line"] == 4
        assert entry["fixable"] is False  # wall-clock has no mechanical rewrite

    def test_fixable_finding_carries_fix_payload(self, contracts):
        findings = lint_source(
            "def f():\n    try:\n        return 1\n    except:\n        return 0\n",
            "src/repro/sim/bad.py",
            contracts,
        )
        report = to_report_dict(LintResult(findings, 1))
        (entry,) = report["findings"]
        assert entry["rule"] == "bare-except"
        assert entry["fixable"] is True
        assert entry["fix"]["id"] == "bare-except-exception"
        edits = entry["fix"]["edits"]
        assert edits and all(
            set(e) == {"start", "end", "replacement"} for e in edits
        )

    def test_render_json_round_trips(self, contracts):
        result = LintResult([], 3)
        parsed = json.loads(render_json(result))
        assert parsed["summary"] == {"errors": 0, "warnings": 0}
        assert parsed["findings"] == []

    def test_text_render_format(self, contracts):
        findings = lint_source(
            "import time\n\ndef f():\n    return time.time()\n",
            "src/repro/sim/bad.py",
            contracts,
        )
        text = render_text(LintResult(findings, 1))
        assert "src/repro/sim/bad.py:4:" in text
        assert "error[wall-clock]" in text
        assert "1 error(s), 0 warning(s) in 1 file" in text


class TestCliExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_fixture(tmp_path, "src/repro/sim/good.py", "def f(rng):\n    return rng.normal()\n")
        assert cli.main(["lint", str(tmp_path)]) == 0
        assert "clean: 0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_fixture(
            tmp_path, "src/repro/sim/bad.py",
            "import time\n\ndef f():\n    return time.time()\n",
        )
        assert cli.main(["lint", str(tmp_path)]) == 1
        assert "error[wall-clock]" in capsys.readouterr().out

    def test_fail_on_error_ignores_warnings(self, tmp_path, capsys):
        write_fixture(
            tmp_path, "src/repro/sim/warn.py",
            "def f():\n    s = {1, 2}\n    return list(s)\n",
        )
        assert cli.main(["lint", "--fail-on", "error", str(tmp_path)]) == 0
        assert cli.main(["lint", str(tmp_path)]) == 1  # default: warnings fail too
        assert "warning[set-iteration]" in capsys.readouterr().out

    def test_no_files_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli.main(["lint", str(empty)]) == 2
        assert "no Python files" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli.main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("wall-clock", "unseeded-rng", "set-iteration",
                        "callback-signature", "backend-protocol", "protocol-schema",
                        "mutable-default", "bare-except", "layer-import",
                        "pragma-reason", "pragma-unknown-rule", "pragma-unused"):
            assert rule_id in out

    def test_syntax_error_is_reported_not_raised(self, tmp_path, capsys):
        write_fixture(tmp_path, "src/repro/sim/broken.py", "def f(:\n")
        assert cli.main(["lint", str(tmp_path)]) == 1
        assert "syntax-error" in capsys.readouterr().out


ACCEPTANCE_FIXTURES = [
    (
        "wall-clock",
        "src/repro/sim/fixture_clock.py",
        "import time\n\ndef charge(env):\n    env.t0 = time.time()\n",
    ),
    (
        "unseeded-rng",
        "src/repro/sim/fixture_rng.py",
        "import numpy as np\n\ndef noise():\n    return np.random.normal(0.0, 1e-3)\n",
    ),
    (
        "callback-signature",
        "src/repro/core/fixture_callback.py",
        "from repro.core import SearchCallback\n\n"
        "class Drifted(SearchCallback):\n"
        "    def on_measurement(self, engine, sample):\n"
        "        pass\n",
    ),
    (
        "protocol-schema",
        "src/repro/service/fixture_proto.py",
        'def request(p):\n    return {"op": "evaluate", "placement": p, "priority": 3}\n',
    ),
]


class TestAcceptanceFixtures:
    @pytest.mark.parametrize("expected_rule,relpath,source",
                             ACCEPTANCE_FIXTURES,
                             ids=[f[0] for f in ACCEPTANCE_FIXTURES])
    def test_text_output_names_exactly_the_rule(
        self, tmp_path, capsys, expected_rule, relpath, source
    ):
        write_fixture(tmp_path, relpath, source)
        assert cli.main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if ": error[" in line or ": warning[" in line]
        assert len(lines) == 1
        assert f"[{expected_rule}]" in lines[0]

    @pytest.mark.parametrize("expected_rule,relpath,source",
                             ACCEPTANCE_FIXTURES,
                             ids=[f[0] for f in ACCEPTANCE_FIXTURES])
    def test_json_output_names_exactly_the_rule(
        self, tmp_path, capsys, expected_rule, relpath, source
    ):
        write_fixture(tmp_path, relpath, source)
        assert cli.main(["lint", "--format", "json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in report["findings"]] == [expected_rule]
        assert report["summary"]["errors"] == 1

    def test_fixtures_fixed_lint_clean(self, tmp_path, capsys):
        """The corrected versions of all four fixtures pass."""
        write_fixture(
            tmp_path, "src/repro/sim/fixture_clock.py",
            "def charge(env):\n    env.t0 = env.env_time\n",
        )
        write_fixture(
            tmp_path, "src/repro/sim/fixture_rng.py",
            "def noise(rng):\n    return rng.normal(0.0, 1e-3)\n",
        )
        write_fixture(
            tmp_path, "src/repro/core/fixture_callback.py",
            "from repro.core import SearchCallback\n\n"
            "class Fixed(SearchCallback):\n"
            "    def on_measurement(self, engine, sample, measurement):\n"
            "        pass\n",
        )
        write_fixture(
            tmp_path, "src/repro/service/fixture_proto.py",
            'def request(p):\n    return {"op": "evaluate", "placement": p}\n',
        )
        assert cli.main(["lint", str(tmp_path)]) == 0


class TestDeterministicOutput:
    def test_findings_sorted(self, tmp_path):
        write_fixture(
            tmp_path, "src/repro/sim/b.py",
            "import time\n\ndef f():\n    return time.time()\n",
        )
        write_fixture(
            tmp_path, "src/repro/sim/a.py",
            "import time\n\ndef f():\n    return time.time()\n",
        )
        result = lint_paths([str(tmp_path)])
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)
        # Two identical runs must render identically.
        again = lint_paths([str(tmp_path)])
        assert [f.render() for f in again.findings] == [
            f.render() for f in result.findings
        ]
