"""Fixture tests for the determinism rules.

Each rule gets a positive snippet (finding fires), a negative snippet
(clean), and a pragma-suppressed snippet.  Snippets are linted under
synthetic ``src/repro/...`` paths so package-scoped rules see them as
core code; the same snippet under a test/example path must be clean.
"""

import pytest

from repro.analysis import ContractIndex, lint_source

SIM_PATH = "src/repro/sim/fixture.py"
TEST_PATH = "tests/fixture.py"


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestWallClock:
    def test_time_time_flagged(self, contracts):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["wall-clock"]

    def test_aliased_import_flagged(self, contracts):
        src = "from time import perf_counter as pc\n\ndef f():\n    return pc()\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["wall-clock"]

    def test_datetime_now_flagged(self, contracts):
        src = "import datetime\n\ndef f():\n    return datetime.datetime.now()\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["wall-clock"]

    def test_outside_core_is_clean(self, contracts):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(src, TEST_PATH, contracts) == []

    def test_env_clock_attribute_is_clean(self, contracts):
        src = "def f(env):\n    return env.env_time\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "import time\n\ndef f():\n"
            "    return time.time()  # repro: allow[wall-clock] boundary metric, not simulated state\n"
        )
        assert lint_source(src, SIM_PATH, contracts) == []


class TestUnseededRng:
    def test_global_numpy_draw_flagged(self, contracts):
        src = "import numpy as np\n\ndef f():\n    return np.random.normal()\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["unseeded-rng"]

    def test_unseeded_default_rng_flagged(self, contracts):
        src = "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["unseeded-rng"]

    def test_seeded_default_rng_clean(self, contracts):
        src = "import numpy as np\n\ndef f(seed):\n    return np.random.default_rng(seed)\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_seed_sequence_clean(self, contracts):
        src = "import numpy as np\n\ndef f(s):\n    return np.random.SeedSequence(s)\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_generator_method_clean(self, contracts):
        src = "def f(rng):\n    return rng.normal(0.0, 1.0)\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_stdlib_random_flagged(self, contracts):
        src = "import random\n\ndef f():\n    return random.random()\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["unseeded-rng"]

    def test_seeded_stdlib_random_instance_clean(self, contracts):
        src = "import random\n\ndef f(seed):\n    return random.Random(seed)\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_outside_core_is_clean(self, contracts):
        src = "import numpy as np\n\ndef f():\n    return np.random.normal()\n"
        assert lint_source(src, TEST_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "import numpy as np\n\ndef f():\n"
            "    return np.random.normal()  # repro: allow[unseeded-rng] demo path, result unused\n"
        )
        assert lint_source(src, SIM_PATH, contracts) == []


class TestSetIteration:
    def test_for_over_set_flagged(self, contracts):
        src = "def f():\n    s = {1, 2, 3}\n    for x in s:\n        print(x)\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["set-iteration"]

    def test_list_of_set_flagged(self, contracts):
        src = "def f(items):\n    s = set(items)\n    return list(s)\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["set-iteration"]

    def test_annotated_attribute_flagged(self, contracts):
        src = (
            "from typing import Set\n\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._edges: Set[int] = set()\n"
            "    def dump(self):\n"
            "        return [e for e in self._edges]\n"
        )
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["set-iteration"]

    def test_sorted_sink_is_clean(self, contracts):
        src = "def f(items):\n    s = set(items)\n    return sorted(s)\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_len_and_membership_clean(self, contracts):
        src = "def f(items, x):\n    s = set(items)\n    return len(s) + (x in s)\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "def f(items):\n    s = set(items)\n"
            "    return list(s)  # repro: allow[set-iteration] order discarded by caller\n"
        )
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_severity_is_warning(self, contracts):
        src = "def f():\n    s = {1}\n    for x in s:\n        pass\n"
        (finding,) = lint_source(src, SIM_PATH, contracts)
        assert finding.severity == "warning"
