"""The lock-guarded-state rule: method-granularity lock escape analysis.

Fixtures are synthetic service-tier classes (the rule is scoped to
``repro.service``).  The inference side — which attributes count as
guarded — and the flagging side — which accesses count as lock-free —
are tested separately, then the conventions (``*_locked`` suffix,
``__init__`` exemption, nested functions, allow pragmas) on top.
"""

import pytest

from repro.analysis import ContractIndex, lint_source


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


PATH = "src/repro/service/fx.py"


def findings_for(source, contracts, rule_id="lock-guarded-state"):
    return [f for f in lint_source(source, PATH, contracts) if f.rule_id == rule_id]


def test_lock_free_read_of_guarded_attr_flagged(contracts):
    src = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._spaces = {}\n"
        "    def add(self, key, value):\n"
        "        with self._lock:\n"
        "            self._spaces[key] = value\n"
        "    def peek(self):\n"
        "        return len(self._spaces)\n"
    )
    (finding,) = findings_for(src, contracts)
    assert "self._spaces" in finding.message
    assert "Registry.peek()" in finding.message


def test_lock_free_write_flagged_as_write(contracts):
    src = (
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0\n"
        "    def add(self, n):\n"
        "        with self._lock:\n"
        "            self.total += n\n"
        "    def reset(self):\n"
        "        self.total = 0\n"
    )
    (finding,) = findings_for(src, contracts)
    assert "lock-free write to self.total" in finding.message


def test_all_locked_class_is_clean(contracts):
    src = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._spaces = {}\n"
        "    def add(self, key, value):\n"
        "        with self._lock:\n"
        "            self._spaces[key] = value\n"
        "    def peek(self):\n"
        "        with self._lock:\n"
        "            return len(self._spaces)\n"
    )
    assert findings_for(src, contracts) == []


def test_unguarded_attr_is_not_flagged(contracts):
    # Never written under the lock → not part of the guarded set.
    src = (
        "import threading\n"
        "class Svc:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._guarded = {}\n"
        "        self.free = 0\n"
        "    def add(self, k, v):\n"
        "        with self._lock:\n"
        "            self._guarded[k] = v\n"
        "        self.free += 1\n"
        "    def read(self):\n"
        "        return self.free\n"
    )
    assert findings_for(src, contracts) == []


def test_mutating_method_call_counts_as_write(contracts):
    src = (
        "import threading\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._idle = []\n"
        "    def put(self, conn):\n"
        "        with self._lock:\n"
        "            self._idle.append(conn)\n"
        "    def steal(self):\n"
        "        return self._idle.pop()\n"
    )
    (finding,) = findings_for(src, contracts)
    assert "Pool.steal()" in finding.message


def test_tuple_target_write_under_lock_infers_guard(contracts):
    # `idle, self._idle = self._idle, []` is how close() drains the pool.
    src = (
        "import threading\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._idle = []\n"
        "    def close(self):\n"
        "        with self._lock:\n"
        "            idle, self._idle = self._idle, []\n"
        "        return idle\n"
        "    def peek(self):\n"
        "        return self._idle\n"
    )
    (finding,) = findings_for(src, contracts)
    assert "Pool.peek()" in finding.message


def test_locked_suffix_method_is_exempt(contracts):
    src = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._spaces = {}\n"
        "    def evict(self):\n"
        "        with self._lock:\n"
        "            self._evict_locked()\n"
        "    def _evict_locked(self):\n"
        "        self._spaces.clear()\n"
        "    def add(self, k, v):\n"
        "        with self._lock:\n"
        "            self._spaces[k] = v\n"
    )
    assert findings_for(src, contracts) == []


def test_init_and_del_are_exempt(contracts):
    src = (
        "import threading\n"
        "class Svc:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = {}\n"
        "        self._state['boot'] = True\n"
        "    def __del__(self):\n"
        "        self._state.clear()\n"
        "    def set(self, k, v):\n"
        "        with self._lock:\n"
        "            self._state[k] = v\n"
    )
    assert findings_for(src, contracts) == []


def test_nested_function_escapes_lock_context(contracts):
    # The closure runs later on an arbitrary thread: the enclosing
    # `with` proves nothing for its body.
    src = (
        "import threading\n"
        "class Svc:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = {}\n"
        "    def set(self, k, v):\n"
        "        with self._lock:\n"
        "            self._state[k] = v\n"
        "    def deferred(self, k):\n"
        "        with self._lock:\n"
        "            def later():\n"
        "                return self._state[k]\n"
        "            return later\n"
    )
    (finding,) = findings_for(src, contracts)
    assert "Svc.deferred()" in finding.message


def test_condition_counts_as_lock(contracts):
    src = (
        "import threading\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._cond = threading.Condition()\n"
        "        self._pending = 0\n"
        "    def admit(self):\n"
        "        with self._cond:\n"
        "            self._pending += 1\n"
        "    def peek(self):\n"
        "        return self._pending\n"
    )
    (finding,) = findings_for(src, contracts)
    assert "self._cond" in finding.message


def test_multiple_locks_reported_sorted(contracts):
    src = (
        "import threading\n"
        "class Svc:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
        "        self._state = 0\n"
        "    def via_a(self):\n"
        "        with self._a:\n"
        "            self._state += 1\n"
        "    def via_b(self):\n"
        "        with self._b:\n"
        "            self._state += 1\n"
        "    def peek(self):\n"
        "        return self._state\n"
    )
    (finding,) = findings_for(src, contracts)
    assert "`with self._a, self._b`" in finding.message


def test_allow_pragma_suppresses(contracts):
    src = (
        "import threading\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._cond = threading.Condition()\n"
        "        self._stopping = False\n"
        "    def stop(self):\n"
        "        with self._cond:\n"
        "            self._stopping = True\n"
        "    def running(self):\n"
        "        # repro: allow[lock-guarded-state] monotonic stop flag, stale read is benign\n"
        "        return not self._stopping\n"
    )
    assert lint_source(src, PATH, contracts) == []


def test_outside_service_scope_is_ignored(contracts):
    src = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._spaces = {}\n"
        "    def add(self, k, v):\n"
        "        with self._lock:\n"
        "            self._spaces[k] = v\n"
        "    def peek(self):\n"
        "        return self._spaces\n"
    )
    assert findings_for(src.replace("", ""), contracts) != []  # sanity: fires in service
    assert [
        f
        for f in lint_source(src, "src/repro/core/fx.py", contracts)
        if f.rule_id == "lock-guarded-state"
    ] == []


def test_staticmethod_without_self_is_ignored(contracts):
    src = (
        "import threading\n"
        "class Svc:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = {}\n"
        "    def set(self, k, v):\n"
        "        with self._lock:\n"
        "            self._state[k] = v\n"
        "    @staticmethod\n"
        "    def helper(state):\n"
        "        return state\n"
    )
    assert findings_for(src, contracts) == []


def test_lock_attr_itself_is_not_guarded_state(contracts):
    # Reassigning the lock under itself must not make `self._lock`
    # "guarded state" that every `with self._lock:` then violates.
    src = (
        "import threading\n"
        "class Svc:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = 0\n"
        "    def set(self, v):\n"
        "        with self._lock:\n"
        "            self._state = v\n"
        "    def replace_lock(self):\n"
        "        with self._lock:\n"
        "            self._lock = threading.Lock()\n"
    )
    assert findings_for(src, contracts) == []
