"""Tests for the pragma allowlist machinery and its meta-rules."""

import pytest

from repro.analysis import ContractIndex, PragmaSheet, lint_source

SIM_PATH = "src/repro/sim/fixture.py"


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestParsing:
    def test_trailing_pragma_covers_its_line(self):
        sheet = PragmaSheet.parse("x = 1  # repro: allow[wall-clock] why\n")
        (pragma,) = sheet.pragmas
        assert pragma.rule_ids == ("wall-clock",)
        assert pragma.reason == "why"
        assert not pragma.own_line
        assert pragma.covers(1) and not pragma.covers(2)

    def test_own_line_pragma_covers_next_line(self):
        sheet = PragmaSheet.parse("# repro: allow[wall-clock] why\nx = 1\n")
        (pragma,) = sheet.pragmas
        assert pragma.own_line
        assert pragma.covers(1) and pragma.covers(2) and not pragma.covers(3)

    def test_multiple_rule_ids(self):
        sheet = PragmaSheet.parse("x  # repro: allow[wall-clock, unseeded-rng] why\n")
        assert sheet.pragmas[0].rule_ids == ("wall-clock", "unseeded-rng")

    def test_docstring_mention_is_not_a_pragma(self):
        source = '"""Write ``# repro: allow[rule-id] reason`` to suppress."""\n'
        assert PragmaSheet.parse(source).pragmas == []

    def test_string_literal_is_not_a_pragma(self):
        source = 'text = "# repro: allow[wall-clock] nope"\n'
        assert PragmaSheet.parse(source).pragmas == []


class TestMetaRules:
    def test_missing_reason_flagged(self, contracts):
        src = "import time\n\ndef f():\n    return time.time()  # repro: allow[wall-clock]\n"
        ids = rule_ids(lint_source(src, SIM_PATH, contracts))
        assert ids == ["pragma-reason"]

    def test_unknown_rule_id_flagged(self, contracts):
        src = "x = 1  # repro: allow[wall-clcok] typo'd suppression\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["pragma-unknown-rule"]

    def test_empty_brackets_flagged(self, contracts):
        src = "x = 1  # repro: allow[] no rule named\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["pragma-unknown-rule"]

    def test_unused_pragma_flagged(self, contracts):
        src = "x = 1  # repro: allow[wall-clock] nothing here to suppress\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["pragma-unused"]

    def test_used_pragma_not_flagged_as_unused(self, contracts):
        src = (
            "import time\n\ndef f():\n"
            "    return time.time()  # repro: allow[wall-clock] boundary metric\n"
        )
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_suppression_still_applies_without_reason(self, contracts):
        """A reasonless pragma suppresses its target but is itself an error."""
        src = "import time\n\ndef f():\n    return time.time()  # repro: allow[wall-clock]\n"
        findings = lint_source(src, SIM_PATH, contracts)
        assert rule_ids(findings) == ["pragma-reason"]
        assert all(f.rule_id != "wall-clock" for f in findings)
