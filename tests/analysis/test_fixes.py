"""Fixer round-trips: apply → clean, apply twice → byte-identical.

Every mechanical fixer gets the same three-part contract check: applying
the fix leaves zero findings for its rule, a second fix pass changes
nothing (idempotency), and a pragma-suppressed finding is never
rewritten.  The fix engine itself is exercised on overlap handling,
bottom-up application and multi-pass convergence.
"""

import pytest

from repro import cli
from repro.analysis import ContractIndex, Finding, Fix, TextEdit, apply_fixes
from repro.analysis.linter import fix_paths, fix_source, write_fix_run


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def write_fixture(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def roundtrip(source, path, contracts):
    """fix → assert clean for the fixed rules → fix again → identical."""
    fixed, applied, remaining = fix_source(source, path, contracts)
    assert applied, "expected at least one fix to apply"
    fixed_rules = {f.rule_id for f in applied}
    assert not [f for f in remaining if f.rule_id in fixed_rules]
    again, applied2, _ = fix_source(fixed, path, contracts)
    assert applied2 == []
    assert again == fixed
    return fixed, applied


class TestSetIterationFixer:
    def test_for_loop_wrapped_in_sorted(self, contracts):
        fixed, applied = roundtrip(
            "def f(edges):\n"
            "    total = 0.0\n"
            "    items = {e for e in edges}\n"
            "    for e in items:\n"
            "        total += e\n"
            "    return total\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert "for e in sorted(items):" in fixed
        assert applied[0].fix.fix_id == "set-iteration-sorted"

    def test_sink_arg_wrapped(self, contracts):
        fixed, _ = roundtrip(
            "def f():\n"
            "    items = {1, 2}\n"
            "    return list(items)\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert "list(sorted(items))" in fixed

    def test_comprehension_generator_wrapped(self, contracts):
        fixed, _ = roundtrip(
            "def f(xs):\n"
            "    s = set(xs)\n"
            "    return [x + 1 for x in s]\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert "for x in sorted(s)]" in fixed


class TestMutableDefaultFixer:
    def test_none_sentinel_and_guard(self, contracts):
        fixed, applied = roundtrip(
            "def accumulate(x, acc=[]):\n"
            "    acc.append(x)\n"
            "    return acc\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert "def accumulate(x, acc=None):" in fixed
        assert "    if acc is None:\n        acc = []\n" in fixed
        assert applied[0].fix.fix_id == "mutable-default-none"

    def test_guard_lands_after_docstring(self, contracts):
        fixed, _ = roundtrip(
            'def f(acc={}):\n'
            '    """Doc."""\n'
            "    return acc\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert fixed.index('"""Doc."""') < fixed.index("if acc is None:")

    def test_kwonly_default_fixed(self, contracts):
        fixed, _ = roundtrip(
            "def f(*, acc=[]):\n"
            "    return acc\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert "def f(*, acc=None):" in fixed

    def test_two_defaults_converge_across_passes(self, contracts):
        # Both guards anchor at the same body line: the second fix is
        # overlap-deferred to pass 2 and still lands.
        fixed, applied = roundtrip(
            "def f(a=[], b={}):\n"
            "    return a, b\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert "def f(a=None, b=None):" in fixed
        assert "if a is None:" in fixed and "if b is None:" in fixed
        assert len(applied) == 2

    def test_single_line_body_gets_no_fix(self, contracts):
        source = "def f(acc=[]): return acc\n"
        fixed, applied, remaining = fix_source(
            source, "src/repro/sim/fx.py", contracts
        )
        assert fixed == source and applied == []
        assert [f.rule_id for f in remaining] == ["mutable-default"]


class TestBareExceptFixer:
    def test_becomes_except_exception(self, contracts):
        fixed, applied = roundtrip(
            "def f(x):\n"
            "    try:\n"
            "        return 1 / x\n"
            "    except:\n"
            "        return 0.0\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert "except Exception:" in fixed
        assert applied[0].fix.fix_id == "bare-except-exception"


class TestPragmaFixers:
    def test_unused_own_line_pragma_deleted(self, contracts):
        fixed, applied = roundtrip(
            "# repro: allow[wall-clock] stale suppression\n"
            "VALUE = 3\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert fixed == "VALUE = 3\n"
        assert applied[0].fix.fix_id == "pragma-remove"

    def test_unused_trailing_pragma_stripped(self, contracts):
        fixed, _ = roundtrip(
            "VALUE = 3  # repro: allow[wall-clock] stale suppression\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert fixed == "VALUE = 3\n"

    def test_unknown_rule_id_dropped_from_list(self, contracts):
        source = (
            "import time\n"
            "WHEN = time.time()  # repro: allow[wall-clock, no-such-rule] boot stamp\n"
        )
        fixed, applied = roundtrip(source, "src/repro/sim/fx.py", contracts)
        assert "# repro: allow[wall-clock] boot stamp" in fixed
        assert "no-such-rule" not in fixed
        assert applied[0].fix.fix_id == "pragma-drop-rule"

    def test_pragma_with_only_unknown_id_removed(self, contracts):
        fixed, _ = roundtrip(
            "VALUE = 3  # repro: allow[no-such-rule] typo\n",
            "src/repro/sim/fx.py",
            contracts,
        )
        assert fixed == "VALUE = 3\n"


class TestPragmaAwareness:
    def test_allowed_finding_is_never_rewritten(self, contracts):
        source = (
            "def f(x):\n"
            "    try:\n"
            "        return 1 / x\n"
            "    # repro: allow[bare-except] reraise logic below needs BaseException\n"
            "    except:\n"
            "        return 0.0\n"
        )
        fixed, applied, remaining = fix_source(
            source, "src/repro/sim/fx.py", contracts
        )
        assert fixed == source
        assert applied == [] and remaining == []


class TestApplyFixes:
    @staticmethod
    def finding(line, col, fix, rule_id="test-rule"):
        return Finding("p.py", line, col, rule_id, "error", "m", fix=fix)

    def test_overlapping_fixes_defer_deterministically(self):
        source = "abcdef\n"
        first = Fix("a", (TextEdit(1, 0, 1, 3, "X"),))
        second = Fix("b", (TextEdit(1, 2, 1, 5, "Y"),))
        fixed, applied, skipped = apply_fixes(
            source, [self.finding(1, 0, first), self.finding(1, 2, second)]
        )
        assert fixed == "Xdef\n"
        assert [f.fix.fix_id for f in applied] == ["a"]
        assert [f.fix.fix_id for f in skipped] == ["b"]

    def test_edits_apply_bottom_up(self):
        source = "one\ntwo\nthree\n"
        fixes = [
            self.finding(1, 0, Fix("f1", (TextEdit(1, 0, 1, 3, "ONE"),))),
            self.finding(3, 0, Fix("f3", (TextEdit(3, 0, 3, 5, "THREE"),))),
        ]
        fixed, applied, _ = apply_fixes(source, fixes)
        assert fixed == "ONE\ntwo\nTHREE\n"
        assert len(applied) == 2

    def test_out_of_bounds_edit_is_skipped(self):
        bad = Fix("oob", (TextEdit(9, 0, 9, 1, "x"),))
        fixed, applied, skipped = apply_fixes("ab\n", [self.finding(1, 0, bad)])
        assert fixed == "ab\n" and applied == [] and len(skipped) == 1

    def test_unicode_columns_are_characters(self):
        # The em dash is 3 UTF-8 bytes but one character: a char-column
        # edit after it must not shift.
        source = "x = 'a — b'\ny = 1\n"
        fix = Fix("u", (TextEdit(2, 4, 2, 5, "2"),))
        fixed, applied, _ = apply_fixes(source, [self.finding(2, 4, fix)])
        assert fixed == "x = 'a — b'\ny = 2\n"
        assert len(applied) == 1


class TestFixCli:
    BAD = (
        "def f(x):\n"
        "    try:\n"
        "        return 1 / x\n"
        "    except:\n"
        "        return 0.0\n"
    )

    def test_diff_previews_without_writing(self, tmp_path, capsys):
        path = write_fixture(tmp_path, "src/repro/sim/fx.py", self.BAD)
        rc = cli.main(["lint", str(tmp_path), "--fix", "--diff"])
        out = capsys.readouterr().out
        assert rc == 0
        assert path.read_text() == self.BAD  # preview only
        assert "+    except Exception:" in out
        assert "applied bare-except-exception ×1" in out

    def test_fix_writes_and_is_idempotent(self, tmp_path, capsys):
        path = write_fixture(tmp_path, "src/repro/sim/fx.py", self.BAD)
        assert cli.main(["lint", str(tmp_path), "--fix"]) == 0
        fixed = path.read_text()
        assert "except Exception:" in fixed
        capsys.readouterr()
        assert cli.main(["lint", str(tmp_path), "--fix"]) == 0
        assert "autofix: 0 fix(es) in 0 files" in capsys.readouterr().out
        assert path.read_text() == fixed

    def test_diff_without_fix_is_an_error(self, tmp_path, capsys):
        write_fixture(tmp_path, "src/repro/sim/fx.py", "VALUE = 3\n")
        assert cli.main(["lint", str(tmp_path), "--diff"]) == 2
        assert "--diff requires --fix" in capsys.readouterr().err

    def test_unfixable_findings_still_fail(self, tmp_path, capsys):
        write_fixture(
            tmp_path, "src/repro/sim/fx.py",
            "import time\n\ndef f():\n    return time.time()\n",
        )
        assert cli.main(["lint", str(tmp_path), "--fix"]) == 1
        assert "error[wall-clock]" in capsys.readouterr().out

    def test_json_reports_fixes_applied(self, tmp_path, capsys):
        import json

        write_fixture(tmp_path, "src/repro/sim/fx.py", self.BAD)
        assert cli.main(["lint", str(tmp_path), "--fix", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["fixes_applied"] == {
            "files_changed": 1,
            "total": 1,
            "by_fix": {"bare-except-exception": 1},
        }
        assert report["findings"] == []


class TestWriteFixRun:
    def test_only_changed_files_are_written(self, tmp_path):
        clean = write_fixture(tmp_path, "src/repro/sim/ok.py", "VALUE = 3\n")
        bad = write_fixture(tmp_path, "src/repro/sim/fx.py", TestFixCli.BAD)
        before = clean.stat().st_mtime_ns
        run = fix_paths([str(tmp_path)])
        assert write_fix_run(run) == 1
        assert clean.stat().st_mtime_ns == before
        assert "except Exception:" in bad.read_text()
