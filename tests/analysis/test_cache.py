"""Tests for the incremental lint cache (content-hash keyed, salted)."""

import json

import pytest

from repro import cli
from repro.analysis import ContractIndex, LintCache, lint_paths
from repro.analysis.cache import content_hash, rules_salt


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def _tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "good.py").write_text("def f(rng):\n    return rng.normal()\n")
    (pkg / "bad.py").write_text("import time\n\ndef f():\n    return time.time()\n")
    return tmp_path


class TestLintCache:
    def test_warm_run_reuses_findings(self, tmp_path, contracts):
        tree = _tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")

        cache = LintCache.load(cache_path)
        cold = lint_paths([str(tree)], contracts, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        assert cold.cache_hits == 0

        cache = LintCache.load(cache_path)
        warm = lint_paths([str(tree)], contracts, cache=cache)
        assert cache.hits == 2 and cache.misses == 0
        assert warm.cache_hits == 2
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_content_change_invalidates_only_that_file(self, tmp_path, contracts):
        tree = _tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        lint_paths([str(tree)], contracts, cache=LintCache.load(cache_path))

        bad = tree / "src" / "repro" / "sim" / "bad.py"
        bad.write_text("def f(rng):\n    return rng.normal()\n")  # now clean
        cache = LintCache.load(cache_path)
        result = lint_paths([str(tree)], contracts, cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert result.findings == []

    def test_corrupt_cache_file_is_treated_as_empty(self, tmp_path, contracts):
        tree = _tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json at all")
        cache = LintCache.load(str(cache_path))
        result = lint_paths([str(tree)], contracts, cache=cache)
        assert cache.hits == 0
        assert result.files_scanned == 2
        # And the save repaired the file.
        assert json.loads(cache_path.read_text())["salt"] == rules_salt()

    def test_stale_salt_invalidates_wholesale(self, tmp_path, contracts):
        tree = _tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        lint_paths([str(tree)], contracts, cache=LintCache.load(str(cache_path)))
        payload = json.loads(cache_path.read_text())
        payload["salt"] = "0" * 64  # as if a rule implementation changed
        cache_path.write_text(json.dumps(payload))
        cache = LintCache.load(str(cache_path))
        lint_paths([str(tree)], contracts, cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_damaged_entry_is_a_miss_and_dropped(self, tmp_path, contracts):
        tree = _tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        lint_paths([str(tree)], contracts, cache=LintCache.load(str(cache_path)))
        payload = json.loads(cache_path.read_text())
        bad_key = str(tree / "src" / "repro" / "sim" / "bad.py")
        payload["files"][bad_key]["findings"] = [{"nonsense": True}]
        cache_path.write_text(json.dumps(payload))
        cache = LintCache.load(str(cache_path))
        result = lint_paths([str(tree)], contracts, cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert any(f.rule_id == "wall-clock" for f in result.findings)

    def test_unreadable_file_bypasses_cache(self, tmp_path, contracts):
        tree = _tree(tmp_path)
        target = tree / "src" / "repro" / "sim" / "bad.py"
        target.write_bytes(b"\xff\xfe junk \xff")
        cache = LintCache.load(str(tmp_path / "cache.json"))
        result = lint_paths([str(tree)], contracts, cache=cache)
        assert any(f.rule_id == "syntax-error" for f in result.findings)

    def test_content_hash_is_stable(self):
        assert content_hash("x = 1\n") == content_hash("x = 1\n")
        assert content_hash("x = 1\n") != content_hash("x = 2\n")


class TestCliCacheFlags:
    def test_cache_path_flag_writes_there(self, tmp_path, capsys):
        tree = _tree(tmp_path)
        cache_path = tmp_path / "custom-cache.json"
        assert cli.main(["lint", "--cache-path", str(cache_path), str(tree)]) == 1
        assert cache_path.exists()
        capsys.readouterr()
        # Second run answers from the cache, findings unchanged.
        assert cli.main(["lint", "--cache-path", str(cache_path), str(tree)]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_no_cache_flag_skips_the_cache(self, tmp_path, capsys):
        tree = _tree(tmp_path)
        cache_path = tmp_path / "never-written.json"
        assert cli.main([
            "lint", "--no-cache", "--cache-path", str(cache_path), str(tree)
        ]) == 1
        assert not cache_path.exists()
        capsys.readouterr()


class TestRulesSalt:
    """The salt must track the fix engine and the contract tables."""

    @staticmethod
    def _package(tmp_path, fixes_body):
        root = tmp_path / "repro"
        analysis = root / "analysis"
        analysis.mkdir(parents=True)
        (analysis / "__init__.py").write_text("")
        (analysis / "fixes.py").write_text(fixes_body)
        return root

    def test_fixes_py_edit_changes_salt(self, tmp_path):
        root = self._package(tmp_path, "FIXERS = 1\n")
        before = rules_salt(root)
        (root / "analysis" / "fixes.py").write_text("FIXERS = 2\n")
        assert rules_salt(root) != before

    def test_salt_is_stable_without_edits(self, tmp_path):
        root = self._package(tmp_path, "FIXERS = 1\n")
        assert rules_salt(root) == rules_salt(root)

    def test_contract_table_edit_changes_salt(self, tmp_path):
        root = self._package(tmp_path, "FIXERS = 1\n")
        core = root / "core"
        core.mkdir()
        (core / "events.py").write_text(
            "class SearchCallback:\n"
            "    def on_ping(self, engine):\n        pass\n"
        )
        before = rules_salt(root)
        (core / "events.py").write_text(
            "class SearchCallback:\n"
            "    def on_ping(self, engine, extra):\n        pass\n"
        )
        assert rules_salt(root) != before

    def test_import_edge_changes_salt(self, tmp_path):
        # internal_imports is a contract table: adding an import edge
        # anywhere in the tree must invalidate cached layer findings.
        root = self._package(tmp_path, "FIXERS = 1\n")
        mod = root / "user.py"
        mod.write_text("x = 1\n")
        before = rules_salt(root)
        mod.write_text("from repro.analysis import fixes\nx = 1\n")
        assert rules_salt(root) != before

    def test_contract_digest_is_deterministic(self, contracts):
        assert contracts.digest() == ContractIndex.load().digest()
