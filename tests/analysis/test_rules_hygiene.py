"""Fixture tests for the hygiene rules."""

import pytest

from repro.analysis import ContractIndex, lint_source
from repro.analysis.rules.hygiene import LAYERS

SIM_PATH = "src/repro/sim/fixture.py"
NN_PATH = "src/repro/nn/fixture.py"
SERVICE_PATH = "src/repro/service/fixture.py"


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestMutableDefault:
    def test_list_default_flagged(self, contracts):
        src = "def f(x=[]):\n    return x\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["mutable-default"]

    def test_dict_and_set_defaults_flagged(self, contracts):
        src = "def f(a={}, b=set()):\n    return a, b\n"
        ids = rule_ids(lint_source(src, SIM_PATH, contracts))
        assert ids == ["mutable-default", "mutable-default"]

    def test_kwonly_default_flagged(self, contracts):
        src = "def f(*, hist=list()):\n    return hist\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["mutable-default"]

    def test_applies_outside_repro_too(self, contracts):
        src = "def f(x=[]):\n    return x\n"
        assert rule_ids(lint_source(src, "tests/fixture.py", contracts)) == ["mutable-default"]

    def test_none_and_tuple_defaults_clean(self, contracts):
        src = "def f(x=None, y=(), z=0):\n    return x, y, z\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = "def f(x=[]):  # repro: allow[mutable-default] sentinel list is never mutated\n    return x\n"
        assert lint_source(src, SIM_PATH, contracts) == []


class TestBareExcept:
    def test_bare_except_flagged(self, contracts):
        src = "def f():\n    try:\n        pass\n    except:\n        pass\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["bare-except"]

    def test_typed_except_clean(self, contracts):
        src = "def f():\n    try:\n        pass\n    except Exception:\n        pass\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "def f():\n    try:\n        pass\n"
            "    except:  # repro: allow[bare-except] last-ditch logging shim\n"
            "        pass\n"
        )
        assert lint_source(src, SIM_PATH, contracts) == []


class TestLayerImport:
    def test_upward_absolute_import_flagged(self, contracts):
        src = "from repro.service import client\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["layer-import"]

    def test_upward_relative_import_flagged(self, contracts):
        src = "from ..service.client import RemoteBackend\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["layer-import"]

    def test_upward_plain_import_flagged(self, contracts):
        src = "import repro.service.server\n"
        assert rule_ids(lint_source(src, NN_PATH, contracts)) == ["layer-import"]

    def test_downward_import_clean(self, contracts):
        src = "from repro.graph import OpGraph\nfrom ..nn import init\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_same_package_clean(self, contracts):
        src = "from .simulator import Simulator\nfrom . import faults\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_top_layer_imports_anything(self, contracts):
        src = "from repro.service import MeasurementServer\nfrom repro.sim import backends\n"
        assert lint_source(src, "src/repro/cli.py", contracts) == []

    def test_third_party_imports_ignored(self, contracts):
        src = "import numpy as np\nimport json\n"
        assert lint_source(src, NN_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "# repro: allow[layer-import] lazy hook, no import-time dependency\n"
            "from repro.service import client\n"
        )
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_layer_table_is_a_total_order_over_packages(self):
        assert LAYERS["repro.sim"] < LAYERS["repro.service"]
        assert LAYERS["repro.nn"] == 0
        assert max(LAYERS.values()) == LAYERS["repro"]


class TestLayerRankUnused:
    """Findings are synthesized from a doctored import-pair table and
    reported against the module that owns the LAYERS rank table."""

    HOME_PATH = "src/repro/analysis/rules/hygiene.py"
    #: Stand-in for this module: the rule anchors at the LAYERS assignment
    #: but reads ranks from the real table.
    HOME_SRC = "LAYERS = {}\n"

    #: One member package per rank, for building synthetic crossings.
    RANK_MEMBER = {
        0: "repro.nn", 1: "repro.graph", 2: "repro.rl", 3: "repro.sim",
        4: "repro.grouping", 5: "repro.placement", 6: "repro.core",
        7: "repro.service", 8: "repro.bench", 9: "repro",
    }

    @staticmethod
    def _doctor(contracts, internal_imports):
        return ContractIndex(
            contracts.callback_signatures,
            contracts.backend_methods,
            contracts.message_schema,
            contracts.nested_fields,
            server_dispatch=contracts.server_dispatch,
            server_methods=contracts.server_methods,
            client_constructors=contracts.client_constructors,
            callback_fire_counts=contracts.callback_fire_counts,
            internal_imports=internal_imports,
        )

    def _boundary_pairs(self, skip_high=None):
        """One import pair per adjacent rank boundary, optionally omitting
        the pair that exercises the (skip_high-1, skip_high) boundary."""
        ranks = sorted(set(LAYERS.values()))
        pairs = set()
        for low, high in zip(ranks, ranks[1:]):
            if high == skip_high:
                continue
            pairs.add((
                f"{self.RANK_MEMBER[high]}.mod",
                f"{self.RANK_MEMBER[low]}.mod",
            ))
        return pairs

    def test_all_boundaries_exercised_is_clean(self, contracts):
        doctored = self._doctor(contracts, self._boundary_pairs())
        assert lint_source(self.HOME_SRC, self.HOME_PATH, doctored) == []

    def test_one_top_spanning_import_covers_everything(self, contracts):
        # repro.cli (rank 9) importing repro.nn (rank 0) crosses every
        # intermediate boundary at once.
        doctored = self._doctor(contracts, {("repro.cli", "repro.nn")})
        assert lint_source(self.HOME_SRC, self.HOME_PATH, doctored) == []

    def test_unexercised_boundary_flagged(self, contracts):
        doctored = self._doctor(contracts, self._boundary_pairs(skip_high=9))
        findings = lint_source(self.HOME_SRC, self.HOME_PATH, doctored)
        assert rule_ids(findings) == ["layer-rank-unused"]
        assert "between rank 8 (repro.bench) and rank 9 (repro)" in findings[0].message

    def test_mid_table_gap_flagged(self, contracts):
        doctored = self._doctor(contracts, self._boundary_pairs(skip_high=5))
        findings = lint_source(self.HOME_SRC, self.HOME_PATH, doctored)
        assert rule_ids(findings) == ["layer-rank-unused"]
        assert "rank 4 (repro.grouping)" in findings[0].message
        assert "rank 5 (repro.placement)" in findings[0].message

    def test_outside_home_module_ignored(self, contracts):
        doctored = self._doctor(contracts, self._boundary_pairs(skip_high=9))
        assert lint_source(self.HOME_SRC, SIM_PATH, doctored) == []

    def test_empty_import_table_stays_silent(self, contracts):
        # Fixture trees have no extracted imports — no evidence, no claim.
        doctored = self._doctor(contracts, set())
        assert lint_source(self.HOME_SRC, self.HOME_PATH, doctored) == []

    def test_pragma_suppresses(self, contracts):
        doctored = self._doctor(contracts, self._boundary_pairs(skip_high=9))
        src = (
            "# repro: allow[layer-rank-unused] bench layer is being retired next release\n"
            "LAYERS = {}\n"
        )
        assert lint_source(src, self.HOME_PATH, doctored) == []

    def test_real_tree_exercises_every_boundary(self, contracts):
        """The shipped rank table matches the shipped import graph."""
        with open(self.HOME_PATH) as fh:
            src = fh.read()
        findings = [
            f for f in lint_source(src, self.HOME_PATH, contracts)
            if f.rule_id == "layer-rank-unused"
        ]
        assert findings == []
