"""Fixture tests for the hygiene rules."""

import pytest

from repro.analysis import ContractIndex, lint_source
from repro.analysis.rules.hygiene import LAYERS

SIM_PATH = "src/repro/sim/fixture.py"
NN_PATH = "src/repro/nn/fixture.py"
SERVICE_PATH = "src/repro/service/fixture.py"


@pytest.fixture(scope="module")
def contracts():
    return ContractIndex.load()


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestMutableDefault:
    def test_list_default_flagged(self, contracts):
        src = "def f(x=[]):\n    return x\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["mutable-default"]

    def test_dict_and_set_defaults_flagged(self, contracts):
        src = "def f(a={}, b=set()):\n    return a, b\n"
        ids = rule_ids(lint_source(src, SIM_PATH, contracts))
        assert ids == ["mutable-default", "mutable-default"]

    def test_kwonly_default_flagged(self, contracts):
        src = "def f(*, hist=list()):\n    return hist\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["mutable-default"]

    def test_applies_outside_repro_too(self, contracts):
        src = "def f(x=[]):\n    return x\n"
        assert rule_ids(lint_source(src, "tests/fixture.py", contracts)) == ["mutable-default"]

    def test_none_and_tuple_defaults_clean(self, contracts):
        src = "def f(x=None, y=(), z=0):\n    return x, y, z\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = "def f(x=[]):  # repro: allow[mutable-default] sentinel list is never mutated\n    return x\n"
        assert lint_source(src, SIM_PATH, contracts) == []


class TestBareExcept:
    def test_bare_except_flagged(self, contracts):
        src = "def f():\n    try:\n        pass\n    except:\n        pass\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["bare-except"]

    def test_typed_except_clean(self, contracts):
        src = "def f():\n    try:\n        pass\n    except Exception:\n        pass\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "def f():\n    try:\n        pass\n"
            "    except:  # repro: allow[bare-except] last-ditch logging shim\n"
            "        pass\n"
        )
        assert lint_source(src, SIM_PATH, contracts) == []


class TestLayerImport:
    def test_upward_absolute_import_flagged(self, contracts):
        src = "from repro.service import client\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["layer-import"]

    def test_upward_relative_import_flagged(self, contracts):
        src = "from ..service.client import RemoteBackend\n"
        assert rule_ids(lint_source(src, SIM_PATH, contracts)) == ["layer-import"]

    def test_upward_plain_import_flagged(self, contracts):
        src = "import repro.service.server\n"
        assert rule_ids(lint_source(src, NN_PATH, contracts)) == ["layer-import"]

    def test_downward_import_clean(self, contracts):
        src = "from repro.graph import OpGraph\nfrom ..nn import init\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_same_package_clean(self, contracts):
        src = "from .simulator import Simulator\nfrom . import faults\n"
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_top_layer_imports_anything(self, contracts):
        src = "from repro.service import MeasurementServer\nfrom repro.sim import backends\n"
        assert lint_source(src, "src/repro/cli.py", contracts) == []

    def test_third_party_imports_ignored(self, contracts):
        src = "import numpy as np\nimport json\n"
        assert lint_source(src, NN_PATH, contracts) == []

    def test_pragma_suppresses(self, contracts):
        src = (
            "# repro: allow[layer-import] lazy hook, no import-time dependency\n"
            "from repro.service import client\n"
        )
        assert lint_source(src, SIM_PATH, contracts) == []

    def test_layer_table_is_a_total_order_over_packages(self):
        assert LAYERS["repro.sim"] < LAYERS["repro.service"]
        assert LAYERS["repro.nn"] == 0
        assert max(LAYERS.values()) == LAYERS["repro"]
