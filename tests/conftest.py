"""Shared fixtures: small graphs, topologies and RNGs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.models import build_chain, build_fan, build_random_layered
from repro.graph.opgraph import OpGraph
from repro.sim import Topology


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_graph() -> OpGraph:
    """A tiny hand-built diamond DAG with mixed op attributes."""
    g = OpGraph("diamond")
    a = g.add_op("in", "Input", (4, 8), cpu_only=True)
    b = g.add_op("left", "MatMul", (4, 16), flops=1e6, param_bytes=512, inputs=[a])
    c = g.add_op("right", "Relu", (4, 8), flops=32, inputs=[a])
    g.add_op("out", "Concat", (4, 24), flops=96, inputs=[b, c])
    return g


@pytest.fixture
def layered_graph() -> OpGraph:
    return build_random_layered(num_layers=6, width=5, seed=7)


@pytest.fixture
def chain_graph() -> OpGraph:
    return build_chain(length=12)


@pytest.fixture
def fan_graph() -> OpGraph:
    return build_fan(width=6)


@pytest.fixture
def topology() -> Topology:
    """A small 2-GPU + CPU topology for fast tests."""
    return Topology.default_4gpu(num_gpus=2)


def numeric_gradient(fn, x0: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of a flat vector."""
    g = np.zeros_like(x0)
    for i in range(x0.size):
        up = x0.copy()
        up[i] += eps
        down = x0.copy()
        down[i] -= eps
        g[i] = (fn(up) - fn(down)) / (2 * eps)
    return g
