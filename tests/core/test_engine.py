"""Tests for the decomposed search engine, its components, and the event layer.

The golden values below were captured from the pre-refactor monolithic
``PlacementSearch.run`` (serial, in-process evaluation) on this exact
scenario; the engine must reproduce them bit-for-bit with every backend.
"""

import hashlib

import numpy as np
import pytest

from repro.core import PostAgent, PlacementSearch, SearchConfig
from repro.core.engine import (
    BestTracker,
    BudgetTracker,
    EntropyAnnealer,
    EvaluationPolicy,
    RewardShaper,
    SearchEngine,
)
from repro.core.events import (
    CallbackList,
    HistoryRecorder,
    LegacyProgressAdapter,
    ProgressPrinter,
    SearchCallback,
)
from repro.graph.models import build_random_layered
from repro.sim import (
    FaultInjectingBackend,
    FaultPlan,
    Measurement,
    MemoBackend,
    ParallelBackend,
    PlacementEnvironment,
    SerialBackend,
    Topology,
)

# ---- golden scenario ------------------------------------------------------ #
GOLDEN = {
    "best_time": 0.011453786383283118,
    "final_time": 0.011423572930178927,
    "env_time": 41.571292693008985,
    "num_invalid": 0,
    "history_sha": "9c2a99d468837f04f8df83f47d46d42c55400408dbb13fcac9b74ee832ed6966",
    "placement_sha": "d3c91eb0849e98cd557810abaee2438eadbb318f24a9df3b042ad48970f36a5f",
}


def golden_scenario():
    graph = build_random_layered(num_layers=6, width=5, seed=7)
    topo = Topology.default_4gpu(num_gpus=2)
    env = PlacementEnvironment(graph, topo, seed=0, setup_time=1.0)
    agent = PostAgent(graph, topo.num_devices, num_groups=6, seed=0)
    config = SearchConfig(
        max_samples=30, minibatch_size=10, entropy_coef=0.1, entropy_coef_final=0.01
    )
    return graph, env, agent, config


def history_sha(history) -> str:
    d = hashlib.sha256()
    d.update(np.asarray(history.env_time, dtype=np.float64).tobytes())
    d.update(np.asarray(history.per_step_time, dtype=np.float64).tobytes())
    d.update(np.asarray(history.best_so_far, dtype=np.float64).tobytes())
    d.update(np.asarray(history.valid, dtype=np.bool_).tobytes())
    return d.hexdigest()


def assert_matches_golden(result):
    assert result.best_time == GOLDEN["best_time"]
    assert result.final_time == GOLDEN["final_time"]
    assert result.env_time == GOLDEN["env_time"]
    assert result.num_invalid == GOLDEN["num_invalid"]
    assert history_sha(result.history) == GOLDEN["history_sha"]
    placement_sha = hashlib.sha256(
        np.asarray(result.best_placement, dtype=np.int64).tobytes()
    ).hexdigest()
    assert placement_sha == GOLDEN["placement_sha"]


class TestGoldenReproduction:
    def test_default_backend_reproduces_prerefactor_result(self):
        _, env, agent, config = golden_scenario()
        result = PlacementSearch(agent, env, "ppo", config).run()
        assert_matches_golden(result)

    def test_serial_backend_explicit(self):
        _, env, agent, config = golden_scenario()
        result = PlacementSearch(agent, env, "ppo", config, backend=SerialBackend(env)).run()
        assert_matches_golden(result)

    def test_memo_backend_bit_for_bit(self):
        _, env, agent, config = golden_scenario()
        backend = MemoBackend(env)
        result = PlacementSearch(agent, env, "ppo", config, backend=backend).run()
        assert_matches_golden(result)
        assert backend.misses == len(backend)

    def test_parallel_backend_bit_for_bit(self):
        _, env, agent, config = golden_scenario()
        with ParallelBackend(env, workers=4, seed=0) as backend:
            result = PlacementSearch(agent, env, "ppo", config, backend=backend).run()
        assert_matches_golden(result)
        assert backend.stats()["dispatched"] == 30.0

    def test_engine_api_directly(self):
        _, env, agent, config = golden_scenario()
        result = SearchEngine(agent, env, "ppo", config).run()
        assert_matches_golden(result)

    def test_fault_wrapper_zero_rate_serial(self):
        _, env, agent, config = golden_scenario()
        backend = FaultInjectingBackend(SerialBackend(env), FaultPlan())
        assert_matches_golden(PlacementSearch(agent, env, "ppo", config, backend=backend).run())

    def test_fault_wrapper_zero_rate_memo(self):
        _, env, agent, config = golden_scenario()
        backend = FaultInjectingBackend(MemoBackend(env), FaultPlan())
        assert_matches_golden(PlacementSearch(agent, env, "ppo", config, backend=backend).run())

    def test_fault_wrapper_zero_rate_parallel(self):
        _, env, agent, config = golden_scenario()
        with ParallelBackend(env, workers=2, seed=0) as inner:
            backend = FaultInjectingBackend(inner, FaultPlan())
            result = PlacementSearch(agent, env, "ppo", config, backend=backend).run()
        assert_matches_golden(result)

    def test_policy_path_without_faults_is_bit_for_bit(self):
        """The resilient per-placement path must be semantics-preserving:
        same commit order, same RNG stream, same golden result."""
        _, env, agent, config = golden_scenario()
        result = PlacementSearch(
            agent, env, "ppo", config,
            backend=FaultInjectingBackend(MemoBackend(env), FaultPlan()),
            policy=EvaluationPolicy(max_retries=3),
        ).run()
        assert_matches_golden(result)
        assert (result.num_faults, result.num_retries, result.num_quarantined) == (0, 0, 0)
        assert result.wall_time == 0.0


class TestMemoHitsAtScale:
    def test_standard_500_sample_run_hits_cache(self):
        graph = build_random_layered(num_layers=6, width=5, seed=7)
        topo = Topology.default_4gpu(num_gpus=2)
        env = PlacementEnvironment(graph, topo, seed=0, setup_time=1.0)
        agent = PostAgent(graph, topo.num_devices, num_groups=6, seed=0)
        config = SearchConfig(max_samples=500, entropy_coef=0.1, entropy_coef_final=0.01)
        backend = MemoBackend(env)
        result = PlacementSearch(agent, env, "ppo", config, backend=backend).run()
        assert result.num_samples == 500
        assert backend.hits > 0
        assert backend.hits + backend.misses == 500
        # the environment clock is charged for every sample, hits included
        assert env.num_evaluations == 500


class RecordingCallback(SearchCallback):
    def __init__(self):
        self.events = []

    def on_search_start(self, engine):
        self.events.append("start")

    def on_batch_start(self, engine, batch_index, batch_size):
        self.events.append(("batch", batch_index, batch_size))

    def on_measurement(self, engine, sample, measurement):
        self.events.append(("measure", engine.num_samples, engine.env_time))

    def on_best(self, engine, placement, per_step_time):
        self.events.append(("best", per_step_time))

    def on_fault(self, engine, placement, fault):
        self.events.append(("fault", fault.kind))

    def on_retry(self, engine, placement, attempt, fault):
        self.events.append(("retry", attempt))

    def on_quarantine(self, engine, placement, fault):
        self.events.append(("quarantine", fault.kind))

    def on_update(self, engine, stats):
        self.events.append(("update", engine.num_samples))

    def on_search_end(self, engine, result):
        self.events.append(("end", result.num_samples))


class TestEventLayer:
    def run_small(self, callbacks=(), max_samples=20, minibatch=10):
        _, env, agent, _ = golden_scenario()
        config = SearchConfig(max_samples=max_samples, minibatch_size=minibatch)
        search = PlacementSearch(agent, env, "ppo", config, callbacks=callbacks)
        return search.run()

    def test_event_sequence(self):
        cb = RecordingCallback()
        result = self.run_small(callbacks=[cb])
        kinds = [e if isinstance(e, str) else e[0] for e in cb.events]
        assert kinds[0] == "start" and kinds[-1] == "end"
        assert kinds.count("batch") == 2 and kinds.count("update") == 2
        assert kinds.count("measure") == 20
        assert cb.events[-1] == ("end", result.num_samples)
        # batch events carry index and size
        assert ("batch", 0, 10) in cb.events and ("batch", 1, 10) in cb.events

    def test_measurement_env_time_is_monotone_and_exact(self):
        cb = RecordingCallback()
        result = self.run_small(callbacks=[cb])
        times = [e[2] for e in cb.events if e[0] == "measure"]
        assert times == sorted(times)
        assert times == result.history.env_time
        assert times[-1] == result.env_time

    def test_on_best_fires_with_decreasing_times(self):
        cb = RecordingCallback()
        self.run_small(callbacks=[cb])
        bests = [e[1] for e in cb.events if e[0] == "best"]
        assert bests  # at least one improvement on a valid run
        assert bests == sorted(bests, reverse=True)
        assert all(np.isfinite(b) for b in bests)

    def test_history_recording_is_an_observer(self):
        from repro.core.search import SearchHistory

        mirror = SearchHistory()
        result = self.run_small(callbacks=[HistoryRecorder(mirror)])
        assert mirror.env_time == result.history.env_time
        assert mirror.best_so_far == result.history.best_so_far

    def test_progress_printer_interval(self, capsys):
        self.run_small(callbacks=[ProgressPrinter(interval=10, total=20)])
        lines = [ln for ln in capsys.readouterr().out.splitlines() if "samples" in ln]
        assert len(lines) == 2
        assert "10/20 samples" in lines[0] and "20/20 samples" in lines[1]

    def test_progress_printer_coarse_interval_no_double_fire(self, capsys):
        self.run_small(callbacks=[ProgressPrinter(interval=15, total=20)])
        lines = [ln for ln in capsys.readouterr().out.splitlines() if "samples" in ln]
        assert len(lines) == 1 and "20/20" in lines[0]

    def test_legacy_progress_deprecated_but_working(self):
        _, env, agent, _ = golden_scenario()
        config = SearchConfig(max_samples=20, minibatch_size=10)
        calls = []
        with pytest.warns(DeprecationWarning):
            PlacementSearch(agent, env, "ppo", config).run(
                progress=lambda n, b, s: calls.append((n, b))
            )
        assert [n for n, _ in calls] == [10, 20]
        assert all(np.isfinite(b) for _, b in calls)

    def test_callback_list_dispatch(self):
        a, b = RecordingCallback(), RecordingCallback()
        cl = CallbackList([a])
        cl.add(b)
        cl.on_search_start(None)
        assert a.events == ["start"] and b.events == ["start"]
        assert len(cl) == 2

    def test_legacy_adapter_unit(self):
        calls = []

        class FakeEngine:
            num_samples = 7
            best_time = 0.5

        LegacyProgressAdapter(lambda n, b, s: calls.append((n, b, s))).on_update(
            FakeEngine(), {"loss": 1.0}
        )
        assert calls == [(7, 0.5, {"loss": 1.0})]


def chaos_search(
    *,
    backend_kind="serial",
    plan=None,
    policy=None,
    max_samples=30,
    env_seed=0,
    agent_seed=0,
    callbacks=(),
):
    """Run the golden scenario under fault injection; returns (result, backend)."""
    graph = build_random_layered(num_layers=6, width=5, seed=7)
    topo = Topology.default_4gpu(num_gpus=2)
    env = PlacementEnvironment(graph, topo, seed=env_seed, setup_time=1.0)
    agent = PostAgent(graph, topo.num_devices, num_groups=6, seed=agent_seed)
    config = SearchConfig(max_samples=max_samples, minibatch_size=10)
    if backend_kind == "serial":
        inner = SerialBackend(env)
    elif backend_kind == "memo":
        inner = MemoBackend(env)
    else:
        inner = ParallelBackend(env, workers=2, seed=0)
    backend = FaultInjectingBackend(inner, plan or FaultPlan.chaos(0.3, seed=123))
    policy = policy or EvaluationPolicy(max_retries=2, max_step_time=60.0)
    try:
        result = PlacementSearch(
            agent, env, "ppo", config, backend=backend, policy=policy, callbacks=callbacks
        ).run()
    finally:
        backend.close()
    return result, backend


class TestEventOrdering:
    """The documented event protocol: on_search_start → (on_batch_start →
    on_measurement* → on_update)* → on_search_end, with fault-family events
    interleaved only between a batch start and its update."""

    def collect(self, **kwargs):
        cb = RecordingCallback()
        result, _ = chaos_search(callbacks=[cb], **kwargs)
        return cb.events, result

    def test_protocol_under_chaos(self):
        events, result = self.collect()
        kinds = [e if isinstance(e, str) else e[0] for e in events]
        assert kinds[0] == "start" and kinds[-1] == "end"
        assert kinds.count("start") == 1 and kinds.count("end") == 1
        # faults occurred (the run would be vacuous otherwise)
        assert kinds.count("fault") == result.num_faults > 0
        assert kinds.count("retry") == result.num_retries
        assert kinds.count("quarantine") == result.num_quarantined

        in_batch = False
        measures_in_batch = 0
        for kind in kinds[1:-1]:
            if kind == "batch":
                assert not in_batch, "nested batch"
                in_batch, measures_in_batch = True, 0
            elif kind == "update":
                assert in_batch and measures_in_batch > 0
                in_batch = False
            elif kind in ("measure", "best", "fault", "retry", "quarantine"):
                assert in_batch, f"{kind} outside a batch"
                if kind == "measure":
                    measures_in_batch += 1
            else:  # pragma: no cover - defensive
                pytest.fail(f"unexpected event {kind}")
        assert not in_batch

    def test_every_retry_and_quarantine_is_preceded_by_its_fault(self):
        events, _ = self.collect()
        pending_faults = 0
        for e in events:
            kind = e if isinstance(e, str) else e[0]
            if kind == "fault":
                pending_faults += 1
            elif kind in ("retry", "quarantine"):
                assert pending_faults > 0, f"{kind} without a preceding fault"
                pending_faults -= 1
        assert pending_faults == 0  # every fault was resolved one way or the other

    def test_faultless_run_emits_no_fault_events(self):
        events, result = self.collect(plan=FaultPlan())
        kinds = {e if isinstance(e, str) else e[0] for e in events}
        assert kinds.isdisjoint({"fault", "retry", "quarantine"})
        assert result.num_faults == 0


@pytest.mark.slow
class TestChaosRuns:
    """Acceptance: a seeded chaos run (fault_rate=0.3, stragglers +
    corruption) over every backend completes, quarantines rather than
    aborts, and its counters reproduce exactly under the same seed."""

    @pytest.mark.parametrize("backend_kind", ["serial", "memo", "parallel"])
    def test_chaos_run_completes_and_reproduces(self, backend_kind):
        def fingerprint():
            result, backend = chaos_search(backend_kind=backend_kind)
            assert result.num_samples == 30  # survived to the full budget
            assert result.num_faults == result.num_retries + result.num_quarantined
            assert result.num_faults > 0
            assert backend.faults_injected == result.num_faults  # no timeout configured
            assert np.isfinite(result.best_time) and result.best_time > 0
            return (
                result.best_time,
                result.env_time,
                result.wall_time,
                result.num_faults,
                result.num_retries,
                result.num_quarantined,
                backend.crashes_injected,
                backend.stragglers_injected,
                backend.corruptions_injected,
            )

        assert fingerprint() == fingerprint()

    def test_zero_retries_quarantines_every_fault(self):
        result, _ = chaos_search(policy=EvaluationPolicy(max_retries=0, max_step_time=60.0))
        assert result.num_retries == 0
        assert result.num_quarantined == result.num_faults > 0
        # quarantined samples are recorded as failed, not dropped
        assert result.num_samples == 30
        assert result.num_invalid >= result.num_quarantined

    def test_timeout_turns_stragglers_into_faults(self):
        plan = FaultPlan(straggler_rate=1.0, straggler_delay=50.0, seed=3)
        lenient = EvaluationPolicy(max_retries=2, timeout=None)
        strict = EvaluationPolicy(max_retries=2, timeout=1e-3)
        r_lenient, b_lenient = chaos_search(plan=plan, policy=lenient, max_samples=10)
        r_strict, _ = chaos_search(plan=plan, policy=strict, max_samples=10)
        assert r_lenient.num_faults == 0 and b_lenient.wall_time > 0
        assert r_strict.num_faults > 0
        assert r_strict.num_faults == r_strict.num_retries + r_strict.num_quarantined

    def test_soak_high_fault_rate_long_run(self):
        """Soak: heavy chaos over a longer budget still degrades gracefully."""
        result, backend = chaos_search(
            plan=FaultPlan.chaos(0.5, seed=7),
            policy=EvaluationPolicy(max_retries=3, max_step_time=60.0),
            backend_kind="memo",
            max_samples=150,
        )
        assert result.num_samples == 150
        assert result.num_faults == result.num_retries + result.num_quarantined
        assert backend.faults_injected == result.num_faults
        assert result.num_quarantined > 0  # at 0.5³⁺¹ per placement, some must die
        assert np.isfinite(result.best_time)
        # the history never recorded a corrupted (finite-but-garbage) time
        finite_times = [t for t in result.history.per_step_time if np.isfinite(t)]
        assert all(0 < t < 60.0 for t in finite_times)


class TestComponents:
    def test_budget_tracker(self):
        b = BudgetTracker(max_samples=100, max_env_time=50.0)
        assert not b.exhausted(99, 0.0)
        assert b.exhausted(100, 0.0)
        assert b.exhausted(0, 50.0)
        assert b.next_batch_size(10, 95) == 5
        assert b.progress(25) == 0.25

    def test_best_tracker_observe_and_failure_time(self):
        t = BestTracker()
        assert t.failure_time() == 60.0
        valid = Measurement(per_step_time=3.0, valid=True, env_time_charged=1.0)
        assert t.observe(np.array([0, 1]), valid) is True
        assert t.best_time == 3.0 and t.failure_time() == 6.0
        worse = Measurement(per_step_time=5.0, valid=True, env_time_charged=1.0)
        assert t.observe(np.array([1, 1]), worse) is False
        assert t.worst_valid == 5.0 and t.failure_time() == 10.0
        oom = Measurement(per_step_time=float("inf"), valid=False, env_time_charged=1.0)
        assert t.observe(np.array([1, 0]), oom) is False
        assert list(t.best_placement) == [0, 1]

    def test_best_tracker_explicit_failure_time(self):
        t = BestTracker(explicit_failure_time=42.0)
        t.worst_valid = 100.0
        assert t.failure_time() == 42.0

    def test_best_tracker_copies_placement(self):
        t = BestTracker()
        p = np.array([0, 1])
        t.observe(p, Measurement(1.0, True, 1.0))
        p[0] = 9
        assert list(t.best_placement) == [0, 1]

    def test_reward_shaper_uses_adaptive_failure_time(self):
        t = BestTracker()
        shaper = RewardShaper(t)
        oom = Measurement(float("inf"), False, 1.0)
        assert shaper.shape(oom) == pytest.approx(-np.sqrt(60.0))
        t.observe(np.array([0]), Measurement(4.0, True, 1.0))
        assert shaper.shape(oom) == pytest.approx(-np.sqrt(8.0))
        assert shaper.shape(Measurement(4.0, True, 1.0)) == pytest.approx(-2.0)

    def test_evaluation_policy_validation(self):
        with pytest.raises(ValueError):
            EvaluationPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            EvaluationPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            EvaluationPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            EvaluationPolicy(max_step_time=-1.0)
        with pytest.raises(ValueError):
            EvaluationPolicy(outlier_factor=1.0)

    def test_evaluation_policy_backoff_is_exponential(self):
        p = EvaluationPolicy(backoff_base=2.0, backoff_factor=3.0)
        assert [p.backoff(k) for k in range(4)] == [2.0, 6.0, 18.0, 54.0]

    def test_evaluation_policy_corruption_detection(self):
        p = EvaluationPolicy(max_step_time=100.0, outlier_factor=10.0)

        def reason(t, reference=0.0):
            return p.corruption_reason(Measurement(t, True, 1.0), reference)

        assert reason(0.5) is None
        assert "non-finite" in reason(float("nan"))
        assert "non-finite" in reason(float("inf"))
        assert "non-positive" in reason(-1.0)
        assert "non-positive" in reason(0.0)
        assert "absolute band" in reason(500.0)
        assert "worst valid" in reason(50.0, reference=1.0)
        assert reason(50.0, reference=40.0) is None  # within the relative band
        # an OOM is an honest failure, never corruption
        oom = Measurement(float("inf"), False, 1.0)
        assert p.corruption_reason(oom) is None

    def test_evaluation_policy_bands_can_be_disabled(self):
        p = EvaluationPolicy(max_step_time=None, outlier_factor=None, reject_nonfinite=False)
        assert p.corruption_reason(Measurement(float("nan"), True, 1.0)) is None
        assert p.corruption_reason(Measurement(1e9, True, 1.0), reference=1.0) is None

    def test_entropy_annealer(self):
        a = EntropyAnnealer(0.1)
        assert a.coef(0.0) == a.coef(1.0) == 0.1
        a = EntropyAnnealer(0.1, 0.01)
        assert a.coef(0.0) == pytest.approx(0.1)
        assert a.coef(1.0) == pytest.approx(0.01)
        assert a.coef(0.5) == pytest.approx(0.055)

    def test_facade_compat_attributes(self):
        _, env, agent, config = golden_scenario()
        search = PlacementSearch(agent, env, "ppo", config)
        assert search._failure_time() == 60.0
        search._worst_valid = 3.0
        assert search._failure_time() == 6.0
        assert search.environment is env
        assert search.agent is agent
        assert isinstance(search.backend, SerialBackend)
