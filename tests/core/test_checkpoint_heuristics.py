"""Tests for checkpointing, the Scotch-style baseline, random search, and
the A2C-style algorithm."""

import numpy as np
import pytest

from repro.core import PlacementSearch, PostAgent, SearchConfig
from repro.core.checkpoint import load_checkpoint, restore_agent, save_checkpoint
from repro.core.heuristic_placement import RandomSearchAgent, scotch_style_placement
from repro.sim import PlacementEnvironment, Topology


class TestCheckpoint:
    @pytest.fixture
    def run(self, layered_graph, topology):
        env = PlacementEnvironment(layered_graph, topology, seed=0)
        agent = PostAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
        result = PlacementSearch(agent, env, "ppo", SearchConfig(max_samples=20)).run()
        return layered_graph, topology, agent, result

    def test_roundtrip_metadata(self, run, tmp_path):
        graph, topo, agent, result = run
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, agent, result)
        ckpt = load_checkpoint(path)
        assert ckpt["meta"]["best_time"] == result.best_time
        assert ckpt["meta"]["num_samples"] == 20
        assert np.array_equal(ckpt["best_placement"], result.best_placement)
        assert len(ckpt["history"]) == 20

    def test_restore_agent_policy(self, run, tmp_path):
        graph, topo, agent, result = run
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, agent, result)
        fresh = PostAgent(graph, topo.num_devices, num_groups=6, seed=99)
        restore_agent(fresh, load_checkpoint(path))
        assert np.array_equal(fresh.greedy_placement(), agent.greedy_placement())

    def test_restore_shape_mismatch(self, run, tmp_path):
        graph, topo, agent, result = run
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, agent, result)
        other = PostAgent(graph, topo.num_devices, num_groups=7, seed=0)
        with pytest.raises(ValueError):
            restore_agent(other, load_checkpoint(path))

    def test_history_invalids_roundtrip(self, layered_graph, topology, tmp_path):
        from repro.core.search import SearchHistory, SearchResult

        h = SearchHistory()
        h.record(1.0, float("inf"), float("inf"), False)
        h.record(2.0, 1.5, 1.5, True)
        result = SearchResult(
            best_placement=np.zeros(layered_graph.num_ops, dtype=np.int64),
            best_time=1.5, final_time=1.5, history=h, num_samples=2,
            num_invalid=1, env_time=3.0, algorithm="ppo",
        )
        agent = PostAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
        path = str(tmp_path / "c.npz")
        save_checkpoint(path, agent, result)
        back = load_checkpoint(path)["history"]
        assert back.valid == [False, True]
        assert back.per_step_time[0] == float("inf")


class TestScotchBaseline:
    def test_valid_on_bert_scale_memory(self):
        """The repair pass must produce a memory-feasible placement even on
        the model that OOMs almost everywhere."""
        from repro.graph.models import build_benchmark
        from repro.sim import Simulator

        graph = build_benchmark("bert", num_layers=4, seq_len=128, batch_size=8)
        topo = Topology.default_4gpu()
        sim = Simulator(graph, topo)
        placement = scotch_style_placement(graph, topo, sim.cost_model)
        sim.simulate(placement)  # must not raise

    def test_uses_gpus(self, layered_graph, topology):
        placement = scotch_style_placement(layered_graph, topology)
        used = set(placement.tolist())
        assert used & set(topology.gpu_indices())

    def test_requires_gpu(self, layered_graph):
        from repro.sim.devices import DeviceSpec, LinkSpec

        cpu_only = Topology(
            [DeviceSpec("/cpu:0", "cpu", 1 << 36, 100.0, 1e-5)],
            default_link=LinkSpec(1e9, 1e-5),
        )
        with pytest.raises(ValueError):
            scotch_style_placement(layered_graph, cpu_only)

    def test_disappoints_vs_tuned_placement(self):
        """§II-C: min-cut partitioning ignores the runtime structure; on
        GNMT it must lose to the wavefront-aware expert placement."""
        from repro.core.predefined import human_expert_placement
        from repro.graph.models import build_benchmark
        from repro.sim import Simulator

        graph = build_benchmark("gnmt")
        topo = Topology.default_4gpu()
        sim = Simulator(graph, topo)
        scotch = sim.step_time(scotch_style_placement(graph, topo, sim.cost_model))
        expert = sim.step_time(human_expert_placement(graph, topo))
        assert scotch > expert


class TestRandomSearchAgent:
    def test_interface(self, layered_graph, topology):
        agent = RandomSearchAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
        env = PlacementEnvironment(layered_graph, topology, seed=0)
        res = PlacementSearch(agent, env, "ppo", SearchConfig(max_samples=20)).run()
        assert np.isfinite(res.best_time)

    def test_no_learning(self, layered_graph, topology):
        agent = RandomSearchAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
        samples = agent.sample_placements(3)
        lp, ent = agent.log_prob_and_entropy(samples)
        assert np.allclose(lp.data, -np.log(topology.num_devices))


class TestPPOValueBaseline:
    def test_runs_and_reports_critic_loss(self, layered_graph, topology):
        env = PlacementEnvironment(layered_graph, topology, seed=0)
        agent = PostAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
        search = PlacementSearch(agent, env, "ppo_value", SearchConfig(max_samples=20))
        res = search.run()
        assert np.isfinite(res.best_time)

    def test_value_net_learns_constant(self):
        from repro.rl.a2c import ValueNetwork
        from repro.rl.rollout import PlacementSample

        vn = ValueNetwork(num_devices=3, hidden=16, lr=0.05, seed=0)
        samples = [
            PlacementSample(
                actions={}, op_placement=np.random.default_rng(i).integers(0, 3, 10),
                logp_old=np.zeros(1), reward=-2.0,
            )
            for i in range(8)
        ]
        for _ in range(100):
            vn.fit(samples, epochs=1)
        assert np.allclose(vn.predict(samples), -2.0, atol=0.1)

    def test_requires_num_devices(self, layered_graph, topology):
        from repro.rl import make_algorithm

        agent = PostAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
        with pytest.raises(ValueError):
            make_algorithm("ppo_value", agent)
