"""Tests for the grouper→placer bridge RNN."""

import numpy as np
import pytest

from repro.core.bridge import GrouperPlacerBridge
from repro.grouping import FeedForwardGrouper, OpFeatureExtractor
from repro.nn import Tensor


@pytest.fixture
def setup(layered_graph, rng):
    ex = OpFeatureExtractor(layered_graph)
    grouper = FeedForwardGrouper(ex.dim, 6, rng=rng)
    bridge = GrouperPlacerBridge(soft_dim=ex.dim, hard_dim=12, out_dim=10, rng=rng)
    return ex, grouper, bridge


class TestSoftFeatures:
    def test_shape(self, setup):
        ex, grouper, bridge = setup
        soft = bridge.soft_group_features(grouper.probs(ex.features), ex.features)
        assert soft.shape == (6, ex.dim)

    def test_uniform_probs_give_mean_features(self, setup):
        ex, _, bridge = setup
        n = len(ex)
        probs = Tensor(np.full((n, 6), 1.0 / 6))
        soft = bridge.soft_group_features(probs, ex.features)
        expected = (ex.features.sum(axis=0) / 6) / (n / 6 + 1.0)
        assert np.allclose(soft.data[0], expected)

    def test_differentiable_wrt_probs(self, setup):
        ex, grouper, bridge = setup
        probs = grouper.probs(ex.features)
        soft = bridge.soft_group_features(probs, ex.features)
        soft.sum().backward()
        assert all(p.grad is not None for p in grouper.parameters())


class TestBridgeForward:
    def test_output_shape(self, setup, rng):
        ex, grouper, bridge = setup
        soft = bridge.soft_group_features(grouper.probs(ex.features), ex.features)
        hard = rng.random((6, 4, 12))
        out = bridge(soft, hard)
        assert out.shape == (6, 4, 10)

    def test_soft_shape_validated(self, setup, rng):
        ex, grouper, bridge = setup
        bad_soft = Tensor(np.zeros((3, ex.dim)))
        with pytest.raises(ValueError):
            bridge(bad_soft, rng.random((6, 2, 12)))

    def test_gradient_path_placer_to_grouper(self, setup, rng):
        """The paper's point: placer-side loss must reach grouper params
        through the bridge even with fixed hard embeddings."""
        ex, grouper, bridge = setup
        soft = bridge.soft_group_features(grouper.probs(ex.features), ex.features)
        hard = rng.random((6, 2, 12))
        out = bridge(soft, hard)
        (out * out).sum().backward()
        grads = [p.grad for p in grouper.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_batch_consistency(self, setup, rng):
        """Identical hard embeddings across the batch give identical outputs."""
        ex, grouper, bridge = setup
        soft = bridge.soft_group_features(grouper.probs(ex.features), ex.features)
        one = rng.random((6, 1, 12))
        rep = np.repeat(one, 3, axis=1)
        out = bridge(soft, rep)
        assert np.allclose(out.data[:, 0], out.data[:, 1])
        assert np.allclose(out.data[:, 0], out.data[:, 2])
