"""Tests for the event layer's MetricsExporter (`repro.core.events`)."""

import io
import json
import math

import pytest

from repro import (
    MemoBackend,
    PlacementEnvironment,
    PlacementSearch,
    PostAgent,
    SearchConfig,
)
from repro.core.events import MetricsExporter
from repro.graph.models import build_random_layered
from repro.sim import Topology


def _read_events(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestCountersAndRendering:
    def test_inc_accumulates(self):
        m = MetricsExporter()
        m.inc("repro_requests_total")
        m.inc("repro_requests_total", 2.0)
        assert m.counters["repro_requests_total"] == 3.0

    def test_render_prometheus_format(self):
        m = MetricsExporter()
        m.inc("repro_faults_total")
        m.inc('repro_faults_total{kind="crash"}')
        text = m.render_prometheus()
        assert "# TYPE repro_faults_total counter" in text
        assert 'repro_faults_total{kind="crash"} 1\n' in text
        assert text.endswith("\n")
        # the labelled series declares the *bare* metric name
        assert '# TYPE repro_faults_total{kind="crash"}' not in text

    def test_render_empty(self):
        assert MetricsExporter().render_prometheus() == ""


class TestJsonLines:
    def test_path_xor_stream(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            MetricsExporter(path=str(tmp_path / "x.jsonl"), stream=io.StringIO())

    def test_counters_only_mode_emits_nothing(self):
        m = MetricsExporter()
        m.emit("event", value=1)  # must be a silent no-op
        m.inc("repro_x_total")
        assert m.counters["repro_x_total"] == 1.0

    def test_emit_writes_strict_json_lines(self):
        stream = io.StringIO()
        m = MetricsExporter(stream=stream)
        m.emit("custom", answer=42)
        (record,) = _read_events(stream)
        assert record == {"event": "custom", "answer": 42}

    def test_nonfinite_floats_become_null(self):
        from repro.core.events import _finite

        assert _finite(float("inf")) is None
        assert _finite(float("nan")) is None
        assert _finite(1.5) == 1.5

    def test_close_is_idempotent_and_keeps_counters(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        m = MetricsExporter(path=str(path))
        m.emit("one")
        m.inc("repro_x_total")
        m.close()
        m.close()
        m.emit("after-close")  # silently dropped, not an error
        assert m.counters["repro_x_total"] == 1.0
        assert [r["event"] for r in (json.loads(x) for x in path.read_text().splitlines())] == [
            "one"
        ]

    def test_stream_is_not_closed_by_close(self):
        stream = io.StringIO()
        m = MetricsExporter(stream=stream)
        m.emit("x")
        m.close()
        assert not stream.closed  # caller owns it


class TestSearchIntegration:
    def _run(self, exporter):
        graph_env = PlacementEnvironment(
            build_random_layered(num_layers=4, width=4, seed=7),
            Topology.default_4gpu(num_gpus=2),
            seed=0,
        )
        agent = PostAgent(graph_env.graph, graph_env.num_devices, num_groups=4, seed=0)
        config = SearchConfig(max_samples=8, minibatch_size=4)
        return PlacementSearch(
            agent,
            graph_env,
            "ppo",
            config,
            backend=MemoBackend(graph_env),
            callbacks=[exporter],
        ).run()

    def test_full_search_event_stream(self):
        stream = io.StringIO()
        exporter = MetricsExporter(stream=stream)
        result = self._run(exporter)
        events = _read_events(stream)

        assert events[0]["event"] == "search_start"
        assert events[0]["algorithm"] == "ppo"
        assert events[-1]["event"] == "search_end"
        assert events[-1]["num_samples"] == result.num_samples

        measurements = [e for e in events if e["event"] == "measurement"]
        assert len(measurements) == result.num_samples
        for e in measurements:
            assert e["valid"] in (True, False)
            assert e["per_step_time"] is None or math.isfinite(e["per_step_time"])

        assert exporter.counters["repro_measurements_total"] == result.num_samples
        assert exporter.counters["repro_updates_total"] == len(
            [e for e in events if e["event"] == "update"]
        )
        assert exporter.counters["repro_searches_started_total"] == 1.0
        assert exporter.counters["repro_searches_finished_total"] == 1.0

    def test_counters_survive_multiple_searches(self):
        exporter = MetricsExporter()
        self._run(exporter)
        self._run(exporter)
        assert exporter.counters["repro_searches_started_total"] == 2.0
        assert exporter.counters["repro_measurements_total"] == 16.0
