"""Crash-safe checkpoint/resume: golden bit-for-bit equivalence tests.

The contract under test (DESIGN.md failure-mode matrix): a search that is
killed between policy updates and resumed from its last engine checkpoint
must land on the *exact* :class:`~repro.core.engine.SearchResult` of the
uninterrupted same-seed run — best placement, reward trace, and
fault/retry/quarantine counters included.  Crashes are simulated
in-process by a callback that raises after N updates; the subprocess
SIGKILL variant lives in ``tests/test_chaos.py`` (slow lane).
"""

import numpy as np
import pytest

from repro.core import EvaluationPolicy, PlacementSearch, PostAgent, SearchConfig
from repro.core.checkpoint import (
    CheckpointCallback,
    CheckpointCorruptError,
    load_checkpoint,
    restore_engine,
    save_checkpoint,
)
from repro.core.events import SearchCallback
from repro.sim import FaultPlan, PlacementEnvironment, make_backend


class _SimulatedCrash(Exception):
    """Stands in for SIGKILL: unwinds the search loop mid-run."""


class _CrashAfter(SearchCallback):
    def __init__(self, updates: int) -> None:
        self.updates = updates
        self._seen = 0

    def on_update(self, engine, stats) -> None:
        self._seen += 1
        if self._seen >= self.updates:
            raise _SimulatedCrash()


def _make_search(layered_graph, topology, *, chaos: bool = False):
    env = PlacementEnvironment(layered_graph, topology, seed=0)
    agent = PostAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
    config = SearchConfig(max_samples=40, entropy_coef=0.1, entropy_coef_final=0.01)
    plan = policy = None
    if chaos:
        plan = FaultPlan(crash_rate=0.08, straggler_rate=0.05,
                         corruption_rate=0.05, seed=0)
        policy = EvaluationPolicy(max_retries=2)
    backend = make_backend(env, fault_plan=plan)
    return PlacementSearch(agent, env, "ppo", config, backend=backend, policy=policy)


def _assert_same_result(a, b):
    assert np.array_equal(a.best_placement, b.best_placement)
    assert a.best_time == b.best_time
    assert a.final_time == b.final_time
    assert a.num_samples == b.num_samples
    assert a.num_invalid == b.num_invalid
    assert a.env_time == b.env_time
    assert a.history.per_step_time == b.history.per_step_time
    assert a.history.best_so_far == b.history.best_so_far
    assert a.history.env_time == b.history.env_time
    assert a.history.valid == b.history.valid
    assert a.num_faults == b.num_faults
    assert a.num_retries == b.num_retries
    assert a.num_quarantined == b.num_quarantined
    assert a.wall_time == b.wall_time


class TestGoldenResume:
    @pytest.mark.parametrize("chaos", [False, True], ids=["clean", "chaos"])
    def test_crash_and_resume_is_bit_for_bit(
        self, layered_graph, topology, tmp_path, chaos
    ):
        path = str(tmp_path / "ckpt.npz")

        golden = _make_search(layered_graph, topology, chaos=chaos).run()

        crashed = _make_search(layered_graph, topology, chaos=chaos)
        with pytest.raises(_SimulatedCrash):
            crashed.run(callbacks=[CheckpointCallback(path), _CrashAfter(2)])

        ckpt = load_checkpoint(path)
        assert ckpt["meta"]["complete"] is False
        assert ckpt["meta"]["num_samples"] == 20

        resumed = _make_search(layered_graph, topology, chaos=chaos)
        restore_engine(resumed.engine, ckpt)
        assert resumed.engine.num_samples == 20
        result = resumed.run(callbacks=[CheckpointCallback(path)])

        _assert_same_result(result, golden)
        final = load_checkpoint(path)
        assert final["meta"]["complete"] is True
        assert final["meta"]["final_time"] == golden.final_time

    def test_every_checkpoint_is_a_valid_resume_point(
        self, layered_graph, topology, tmp_path
    ):
        """Resuming from *any* update boundary reaches the same result."""
        golden = _make_search(layered_graph, topology).run()
        for updates in (1, 3):
            path = str(tmp_path / f"u{updates}.npz")
            crashed = _make_search(layered_graph, topology)
            with pytest.raises(_SimulatedCrash):
                crashed.run(callbacks=[CheckpointCallback(path), _CrashAfter(updates)])
            resumed = _make_search(layered_graph, topology)
            restore_engine(resumed.engine, load_checkpoint(path))
            _assert_same_result(resumed.run(), golden)


class TestCheckpointCallback:
    def test_save_cadence(self, layered_graph, topology, tmp_path):
        path = str(tmp_path / "c.npz")
        cb = CheckpointCallback(path, every=2)
        _make_search(layered_graph, topology).run(callbacks=[cb])
        # 4 updates at every=2 → 2 mid-run saves, plus the complete save.
        assert cb.saves == 3

    def test_extra_meta_round_trips(self, layered_graph, topology, tmp_path):
        path = str(tmp_path / "c.npz")
        cb = CheckpointCallback(path, extra_meta={"cli": {"seed": 7}})
        _make_search(layered_graph, topology).run(callbacks=[cb])
        assert load_checkpoint(path)["meta"]["cli"] == {"seed": 7}

    def test_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointCallback(str(tmp_path / "c.npz"), every=0)


class TestCheckpointIntegrity:
    def _checkpoint(self, layered_graph, topology, tmp_path) -> str:
        path = str(tmp_path / "c.npz")
        search = _make_search(layered_graph, topology)
        with pytest.raises(_SimulatedCrash):
            search.run(callbacks=[CheckpointCallback(path), _CrashAfter(1)])
        return path

    def test_flipped_byte_detected(self, layered_graph, topology, tmp_path):
        path = self._checkpoint(layered_graph, topology, tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_truncation_detected(self, layered_graph, topology, tmp_path):
        path = self._checkpoint(layered_graph, topology, tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_result_only_checkpoint_cannot_resume(
        self, layered_graph, topology, tmp_path
    ):
        path = str(tmp_path / "c.npz")
        search = _make_search(layered_graph, topology)
        result = search.run()
        save_checkpoint(path, search.agent, result)  # no engine snapshot
        fresh = _make_search(layered_graph, topology)
        with pytest.raises(ValueError, match="no engine state"):
            restore_engine(fresh.engine, load_checkpoint(path))

    def test_shape_mismatch_rejected(self, layered_graph, topology, tmp_path):
        path = self._checkpoint(layered_graph, topology, tmp_path)
        env = PlacementEnvironment(layered_graph, topology, seed=0)
        other = PostAgent(layered_graph, topology.num_devices, num_groups=7, seed=0)
        search = PlacementSearch(other, env, "ppo", SearchConfig(max_samples=40))
        with pytest.raises(ValueError, match="shape mismatch"):
            restore_engine(search.engine, load_checkpoint(path))
