"""Tests for the placement search loop and predefined placements."""

import numpy as np
import pytest

from repro.core import (
    PlacementSearch,
    PostAgent,
    SearchConfig,
    human_expert_placement,
    single_gpu_placement,
)
from repro.core.search import SearchHistory
from repro.sim import PlacementEnvironment, Topology


@pytest.fixture
def env(layered_graph, topology):
    return PlacementEnvironment(layered_graph, topology, seed=0, setup_time=1.0)


@pytest.fixture
def agent(layered_graph, topology):
    return PostAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)


class TestSearch:
    def test_respects_sample_budget(self, agent, env):
        cfg = SearchConfig(max_samples=25, minibatch_size=10)
        res = PlacementSearch(agent, env, "ppo", cfg).run()
        assert res.num_samples == 25
        assert len(res.history) == 25

    def test_respects_env_time_budget(self, agent, env):
        cfg = SearchConfig(max_samples=10_000, minibatch_size=5, max_env_time=30.0)
        res = PlacementSearch(agent, env, "ppo", cfg).run()
        assert res.num_samples < 10_000
        assert res.env_time >= 30.0

    def test_best_placement_is_best_seen(self, agent, env):
        cfg = SearchConfig(max_samples=20, minibatch_size=10)
        res = PlacementSearch(agent, env, "ppo", cfg).run()
        assert res.best_placement is not None
        valid_times = [t for t, v in zip(res.history.per_step_time, res.history.valid) if v]
        assert res.best_time == pytest.approx(min(valid_times))

    def test_best_so_far_monotone(self, agent, env):
        cfg = SearchConfig(max_samples=30, minibatch_size=10)
        res = PlacementSearch(agent, env, "ppo", cfg).run()
        best = np.array(res.history.best_so_far)
        assert np.all(np.diff(best) <= 1e-12)

    def test_final_evaluation_close_to_best(self, agent, env):
        cfg = SearchConfig(max_samples=20, minibatch_size=10)
        res = PlacementSearch(agent, env, "ppo", cfg).run()
        assert res.final_time == pytest.approx(res.best_time, rel=0.05)

    def test_progress_callback_invoked(self, agent, env):
        calls = []
        cfg = SearchConfig(max_samples=20, minibatch_size=10)
        PlacementSearch(agent, env, "ppo", cfg).run(
            progress=lambda n, b, s: calls.append(n)
        )
        assert calls == [10, 20]

    def test_all_algorithms_run(self, layered_graph, topology):
        for algo in ("reinforce", "ppo", "ppo_ce"):
            env = PlacementEnvironment(layered_graph, topology, seed=0)
            agent = PostAgent(layered_graph, topology.num_devices, num_groups=6, seed=0)
            res = PlacementSearch(agent, env, algo, SearchConfig(max_samples=20)).run()
            assert res.algorithm == algo
            assert np.isfinite(res.best_time)

    def test_adaptive_failure_time(self, agent, env):
        search = PlacementSearch(agent, env, "ppo", SearchConfig(max_samples=10))
        assert search._failure_time() == 60.0  # before any valid sample
        search._worst_valid = 3.0
        assert search._failure_time() == 6.0

    def test_explicit_failure_time(self, agent, env):
        cfg = SearchConfig(max_samples=10, failure_time=42.0)
        search = PlacementSearch(agent, env, "ppo", cfg)
        assert search._failure_time() == 42.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SearchConfig(max_samples=0)
        with pytest.raises(ValueError):
            SearchConfig(minibatch_size=0)


class TestSearchHistory:
    def test_time_to_best(self):
        h = SearchHistory()
        h.record(10.0, 5.0, 5.0, True)
        h.record(20.0, 2.0, 2.0, True)
        h.record(30.0, 3.0, 2.0, True)
        assert h.time_to_best() == 20.0

    def test_time_to_best_empty(self):
        assert np.isnan(SearchHistory().time_to_best())

    def test_time_to_best_all_invalid(self):
        # A run that never found a valid placement has no finite best:
        # there is no meaningful "time to best", so the metric is NaN.
        h = SearchHistory()
        h.record(1.0, float("inf"), float("inf"), False)
        h.record(2.0, float("inf"), float("inf"), False)
        assert np.isnan(h.time_to_best())

    def test_time_to_best_single_sample(self):
        h = SearchHistory()
        h.record(5.0, 1.0, 1.0, True)
        assert h.time_to_best() == 5.0

    def test_time_to_best_late_improvement_within_tolerance(self):
        # An early sample within tolerance of the final best wins.
        h = SearchHistory()
        h.record(10.0, 1.004, 1.004, True)
        h.record(20.0, 1.0, 1.0, True)
        assert h.time_to_best(tolerance=1.005) == 10.0
        assert h.time_to_best(tolerance=1.001) == 20.0

    def test_num_invalid(self):
        h = SearchHistory()
        h.record(1.0, float("inf"), float("inf"), False)
        h.record(2.0, 1.0, 1.0, True)
        assert h.num_invalid == 1


class TestPredefined:
    def test_single_gpu_all_on_one_device(self, layered_graph, topology):
        p = single_gpu_placement(layered_graph, topology)
        assert np.all(p == topology.gpu_indices()[0])

    def test_single_gpu_index_selectable(self, layered_graph, topology):
        p = single_gpu_placement(layered_graph, topology, gpu=1)
        assert np.all(p == topology.gpu_indices()[1])

    def test_single_gpu_requires_gpu(self, layered_graph):
        from repro.sim.devices import DeviceSpec, LinkSpec, Topology as T

        cpu_only = T(
            [DeviceSpec("/cpu:0", "cpu", 1 << 34, 100.0, 1e-5)],
            default_link=LinkSpec(1e9, 1e-5),
        )
        with pytest.raises(ValueError):
            single_gpu_placement(layered_graph, cpu_only)

    def test_gnmt_expert_structure(self):
        from repro.graph.models import build_benchmark

        g = build_benchmark("gnmt", seq_len=6, batch_size=8, hidden=32, vocab=200)
        topo = Topology.default_4gpu()
        p = human_expert_placement(g, topo)
        gpus = topo.gpu_indices()
        # layers round-robin over the GPUs
        assert p[g.node("encoder/l1/step0").op_id] == gpus[1]
        assert p[g.node("decoder/l2/step0").op_id] == gpus[2]
        # softmax head colocated with the last decoder layer's GPU
        assert p[g.node("head/projection").op_id] == gpus[3]
        # embeddings on the CPU
        assert p[g.node("encoder/embedding").op_id] == topo.cpu_indices()[0]

    def test_inception_expert_is_single_gpu(self):
        from repro.graph.models import build_benchmark

        g = build_benchmark("inception_v3", image_size=75)
        topo = Topology.default_4gpu()
        assert np.all(human_expert_placement(g, topo) == topo.gpu_indices()[0])

    def test_unknown_model_falls_back(self, layered_graph):
        topo = Topology.default_4gpu()
        p = human_expert_placement(layered_graph, topo)
        assert np.all(p == topo.gpu_indices()[0])
