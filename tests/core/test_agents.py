"""Tests for the placement agents (EAGLE, HP, Post, fixed-grouping)."""

import numpy as np
import pytest

from repro.core import (
    EagleAgent,
    FixedGroupingGCNAgent,
    FixedGroupingSeq2SeqAgent,
    HierarchicalPlannerAgent,
    PostAgent,
)
from repro.grouping import MetisGrouper, TopoBlockGrouper

NUM_DEVICES = 3
NUM_GROUPS = 8


@pytest.fixture(
    params=["eagle", "hierarchical", "post", "fixed_seq2seq", "fixed_gcn"],
)
def agent(request, layered_graph):
    kind = request.param
    if kind == "eagle":
        return EagleAgent(
            layered_graph, NUM_DEVICES, NUM_GROUPS, placer_hidden=16, warm_start=None, seed=0
        )
    if kind == "hierarchical":
        return HierarchicalPlannerAgent(
            layered_graph, NUM_DEVICES, NUM_GROUPS, placer_hidden=16, warm_start=None, seed=0
        )
    if kind == "post":
        return PostAgent(layered_graph, NUM_DEVICES, NUM_GROUPS, seed=0)
    if kind == "fixed_seq2seq":
        return FixedGroupingSeq2SeqAgent(
            layered_graph, NUM_DEVICES, MetisGrouper(NUM_GROUPS), placer_hidden=16, seed=0
        )
    return FixedGroupingGCNAgent(
        layered_graph, NUM_DEVICES, MetisGrouper(NUM_GROUPS), placer_hidden=16, seed=0
    )


class TestAgentInterface:
    def test_sample_placements_shape(self, agent, layered_graph):
        samples = agent.sample_placements(3)
        assert len(samples) == 3
        for s in samples:
            assert s.op_placement.shape == (layered_graph.num_ops,)
            assert s.op_placement.min() >= 0
            assert s.op_placement.max() < NUM_DEVICES
            assert s.logp_old.ndim == 1

    def test_logp_old_matches_recompute(self, agent):
        samples = agent.sample_placements(4)
        lp, ent = agent.log_prob_and_entropy(samples)
        stored = np.stack([s.logp_old for s in samples])
        assert lp.shape == stored.shape
        assert np.allclose(lp.data, stored, atol=1e-8)
        assert np.isfinite(ent.item())

    def test_gradients_reach_every_parameter(self, agent):
        samples = agent.sample_placements(2)
        lp, ent = agent.log_prob_and_entropy(samples)
        (lp.sum(axis=1).mean() + 0.1 * ent).backward()
        missing = [n for n, p in agent.named_parameters() if p.grad is None]
        assert not missing, f"no gradient for {missing}"

    def test_greedy_placement_valid(self, agent, layered_graph):
        p = agent.greedy_placement()
        assert p.shape == (layered_graph.num_ops,)
        assert p.min() >= 0 and p.max() < NUM_DEVICES

    def test_samples_vary(self, agent):
        samples = agent.sample_placements(6)
        placements = np.stack([s.op_placement for s in samples])
        assert not all(np.array_equal(placements[0], placements[i]) for i in range(1, 6))


class TestEagleSpecifics:
    def test_group_then_device_composition(self, layered_graph):
        agent = EagleAgent(layered_graph, NUM_DEVICES, NUM_GROUPS, placer_hidden=16, warm_start=None, seed=0)
        s = agent.sample_placements(1)[0]
        groups = s.actions["groups"]
        devices = s.actions["devices"]
        assert np.array_equal(s.op_placement, devices[groups])

    def test_warm_start_reduces_cut(self, layered_graph):
        from repro.grouping import cut_cost

        cold = EagleAgent(layered_graph, NUM_DEVICES, NUM_GROUPS, placer_hidden=16, warm_start=None, seed=0)
        warm = EagleAgent(layered_graph, NUM_DEVICES, NUM_GROUPS, placer_hidden=16, warm_start="metis", seed=0)
        cold_cut = cut_cost(layered_graph, cold.grouper.assign(layered_graph))
        warm_cut = cut_cost(layered_graph, warm.grouper.assign(layered_graph))
        assert warm_cut < cold_cut

    def test_unknown_warm_start_rejected(self, layered_graph):
        with pytest.raises(ValueError):
            EagleAgent(layered_graph, NUM_DEVICES, NUM_GROUPS, warm_start="oracle")

    def test_attention_variants(self, layered_graph):
        for attn in ("before", "after"):
            agent = EagleAgent(
                layered_graph, NUM_DEVICES, NUM_GROUPS, placer_hidden=16,
                attention=attn, warm_start=None, seed=0,
            )
            assert agent.placer.attention == attn


class TestPostSpecifics:
    def test_default_grouping_is_topo_blocks(self, layered_graph):
        agent = PostAgent(layered_graph, NUM_DEVICES, NUM_GROUPS, seed=0)
        expected = TopoBlockGrouper(NUM_GROUPS).assign(layered_graph)
        assert np.array_equal(agent.assignment, expected)

    def test_custom_grouper(self, layered_graph):
        agent = PostAgent(
            layered_graph, NUM_DEVICES, grouper=MetisGrouper(NUM_GROUPS), seed=0
        )
        assert agent.num_groups == NUM_GROUPS

    def test_policy_is_simple(self, layered_graph):
        """Post's network must be much smaller than a seq2seq placer."""
        post = PostAgent(layered_graph, NUM_DEVICES, NUM_GROUPS, seed=0)
        eagle = EagleAgent(layered_graph, NUM_DEVICES, NUM_GROUPS, placer_hidden=64, warm_start=None, seed=0)
        assert post.num_parameters() < eagle.num_parameters() / 5


class TestFixedGroupingSpecifics:
    def test_assignment_never_changes(self, layered_graph):
        agent = FixedGroupingSeq2SeqAgent(
            layered_graph, NUM_DEVICES, MetisGrouper(NUM_GROUPS), placer_hidden=16, seed=0
        )
        a0 = agent.assignment.copy()
        agent.sample_placements(3)
        assert np.array_equal(agent.assignment, a0)

    def test_gcn_agent_excludes_adjacency_from_embedding(self, layered_graph):
        seq = FixedGroupingSeq2SeqAgent(
            layered_graph, NUM_DEVICES, MetisGrouper(NUM_GROUPS), placer_hidden=16, seed=0
        )
        gcn = FixedGroupingGCNAgent(
            layered_graph, NUM_DEVICES, MetisGrouper(NUM_GROUPS), placer_hidden=16, seed=0
        )
        assert gcn.embedder.dim < seq.embedder.dim
