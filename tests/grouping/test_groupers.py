"""Tests for the heuristic and learned groupers."""

import numpy as np
import pytest

from repro.grouping import (
    FeedForwardGrouper,
    FluidGrouper,
    MetisGrouper,
    OpFeatureExtractor,
    RandomGrouper,
    TopoBlockGrouper,
    cut_cost,
    partition_kway,
)
from repro.grouping.fluid import asyn_fluidc_assignment


class TestMetis:
    def test_assignment_valid(self, layered_graph):
        a = MetisGrouper(8).assign(layered_graph)
        assert a.shape == (layered_graph.num_ops,)
        assert a.min() >= 0 and a.max() < 8

    def test_k1_trivial(self, layered_graph):
        assert np.all(partition_kway(layered_graph, 1) == 0)

    def test_invalid_k(self, layered_graph):
        with pytest.raises(ValueError):
            partition_kway(layered_graph, 0)

    def test_cut_beats_random(self, layered_graph):
        metis_cut = cut_cost(layered_graph, MetisGrouper(8).assign(layered_graph))
        rnd_cut = cut_cost(layered_graph, RandomGrouper(8, seed=1).assign(layered_graph))
        assert metis_cut < rnd_cut

    def test_balance_constraint(self, layered_graph):
        from repro.grouping.metis import balanced_node_weights

        a = partition_kway(layered_graph, 4, imbalance=0.10)
        weights = balanced_node_weights(layered_graph)
        loads = np.bincount(a, weights=weights, minlength=4)
        # refinement respects the cap approximately (initial partition may
        # exceed it on adversarial graphs, so allow slack)
        assert loads.max() <= 1.6 * weights.sum() / 4

    def test_weights_balance_memory_too(self):
        """A byte-heavy, FLOP-light op must carry substantial weight."""
        from repro.graph.opgraph import OpGraph
        from repro.grouping.metis import balanced_node_weights

        g = OpGraph()
        g.add_op("compute", "MatMul", (4, 4), flops=1e12)
        g.add_op("memory", "Softmax", (64_000_000,), flops=10.0)
        w = balanced_node_weights(g)
        assert w[1] > 0.4 * w[0]

    def test_deterministic_per_seed(self, layered_graph):
        a = partition_kway(layered_graph, 6, seed=4)
        b = partition_kway(layered_graph, 6, seed=4)
        assert np.array_equal(a, b)

    def test_cache_returns_copy(self, layered_graph):
        g = MetisGrouper(4)
        a = g.assign(layered_graph)
        a[:] = -99
        assert g.assign(layered_graph).min() >= 0

    def test_chain_partition_is_contiguousish(self):
        """Min-cut on a chain should cut few edges (≈ k-1)."""
        from repro.graph.models import build_chain

        g = build_chain(length=40)
        a = partition_kway(g, 4)
        cuts = sum(1 for s, d in g.edges() if a[s] != a[d])
        assert cuts <= 8


class TestFluid:
    def test_assignment_valid(self, layered_graph):
        a = FluidGrouper(8).assign(layered_graph)
        assert a.min() >= 0 and a.max() < 8

    def test_own_implementation(self, layered_graph):
        a = asyn_fluidc_assignment(layered_graph, 6, use_networkx=False)
        assert a.shape == (layered_graph.num_ops,)
        assert len(np.unique(a)) >= 2

    def test_networkx_backend(self, layered_graph):
        a = asyn_fluidc_assignment(layered_graph, 6, use_networkx=True)
        assert a.shape == (layered_graph.num_ops,)

    def test_invalid_k(self, layered_graph):
        with pytest.raises(ValueError):
            asyn_fluidc_assignment(layered_graph, 0)

    def test_disconnected_components_handled(self):
        from repro.graph.opgraph import OpGraph

        g = OpGraph()
        for i in range(6):
            g.add_op(f"a{i}", "Relu", (1,))
        g.add_edge("a0", "a1")
        g.add_edge("a2", "a3")
        g.add_edge("a4", "a5")
        a = asyn_fluidc_assignment(g, 3, use_networkx=False)
        assert a.shape == (6,)


class TestSimpleGroupers:
    def test_topo_blocks_contiguous(self, layered_graph):
        a = TopoBlockGrouper(5).assign(layered_graph)
        order = layered_graph.topological_order()
        seq = a[order]
        # group ids along the topological order are non-decreasing
        assert np.all(np.diff(seq) >= 0)

    def test_topo_more_groups_than_ops(self, small_graph):
        a = TopoBlockGrouper(100).assign(small_graph)
        assert a.max() < small_graph.num_ops

    def test_random_within_range(self, layered_graph):
        a = RandomGrouper(7, seed=3).assign(layered_graph)
        assert a.min() >= 0 and a.max() < 7

    def test_invalid_num_groups(self):
        with pytest.raises(ValueError):
            TopoBlockGrouper(0)


class TestFeedForwardGrouper:
    @pytest.fixture
    def setup(self, layered_graph, rng):
        ex = OpFeatureExtractor(layered_graph)
        grouper = FeedForwardGrouper(ex.dim, 6, rng=rng)
        return layered_graph, ex, grouper

    def test_is_learned(self, setup):
        _, _, grouper = setup
        assert grouper.is_learned
        assert not MetisGrouper(4).is_learned

    def test_sample_shapes(self, setup, rng):
        g, ex, grouper = setup
        a, lp = grouper.sample(ex.features, batch=3, rng=rng)
        assert a.shape == (3, g.num_ops)
        assert lp.shape == (3, g.num_ops)
        assert a.min() >= 0 and a.max() < 6

    def test_sampled_logp_matches_recomputed(self, setup, rng):
        g, ex, grouper = setup
        a, lp = grouper.sample(ex.features, batch=4, rng=rng)
        lp2 = grouper.log_prob(ex.features, a)
        assert np.allclose(lp2.data, lp, atol=1e-10)

    def test_entropy_near_uniform_at_init(self, setup):
        _, ex, grouper = setup
        ent = grouper.entropy(ex.features).item()
        assert 0.5 * np.log(6) < ent <= np.log(6) + 1e-9

    def test_assign_returns_mode(self, setup):
        g, ex, grouper = setup
        a = grouper.assign(g)
        logits = grouper.logits(ex.features).data
        assert np.array_equal(a, logits.argmax(axis=1))

    def test_assign_checks_feature_dim(self, setup, small_graph):
        _, _, grouper = setup
        with pytest.raises(ValueError):
            grouper.assign(small_graph)

    def test_log_prob_differentiable(self, setup, rng):
        g, ex, grouper = setup
        a, _ = grouper.sample(ex.features, batch=2, rng=rng)
        lp = grouper.log_prob(ex.features, a)
        lp.sum(axis=1).mean().backward()
        assert all(p.grad is not None for p in grouper.parameters())


class TestPretrain:
    def test_pretraining_reaches_target(self, layered_graph, rng):
        from repro.grouping.pretrain import pretrain_grouper, warm_start_assignment

        ex = OpFeatureExtractor(layered_graph)
        grouper = FeedForwardGrouper(ex.dim, 4, rng=rng)
        target = warm_start_assignment(layered_graph, 4)
        acc = pretrain_grouper(grouper, ex.features, target, steps=200)
        assert acc > 0.6

    def test_pretrain_validates_target(self, layered_graph, rng):
        from repro.grouping.pretrain import pretrain_grouper

        ex = OpFeatureExtractor(layered_graph)
        grouper = FeedForwardGrouper(ex.dim, 4, rng=rng)
        with pytest.raises(ValueError):
            pretrain_grouper(grouper, ex.features, np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            pretrain_grouper(grouper, ex.features, np.full(layered_graph.num_ops, 99))
