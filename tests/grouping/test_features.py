"""Tests for op feature extraction."""

import numpy as np

from repro.grouping.features import OP_TYPE_VOCAB, OpFeatureExtractor, op_type_index


class TestTypeVocabulary:
    def test_known_types_have_indices(self):
        assert op_type_index("Conv2D") == OP_TYPE_VOCAB.index("Conv2D")

    def test_unknown_maps_to_other(self):
        assert op_type_index("WeirdCustomOp") == len(OP_TYPE_VOCAB)

    def test_vocab_sorted_and_unique(self):
        assert list(OP_TYPE_VOCAB) == sorted(set(OP_TYPE_VOCAB))


class TestExtractor:
    def test_shape(self, layered_graph):
        ex = OpFeatureExtractor(layered_graph)
        assert ex.features.shape == (layered_graph.num_ops, ex.dim)
        assert len(ex) == layered_graph.num_ops

    def test_finite_and_bounded(self, layered_graph):
        ex = OpFeatureExtractor(layered_graph)
        assert np.all(np.isfinite(ex.features))
        assert np.abs(ex.features).max() <= 1.0 + 1e-9

    def test_type_onehot_rows(self, small_graph):
        ex = OpFeatureExtractor(small_graph)
        assert np.allclose(ex.type_onehot.sum(axis=1), 1.0)
        assert ex.type_onehot[1, op_type_index("MatMul")] == 1.0

    def test_cpu_only_flag_column(self, small_graph):
        ex = OpFeatureExtractor(small_graph)
        col = ex.num_types + 3  # after the three magnitude columns
        assert ex.features[0, col] == 1.0  # Input op
        assert ex.features[1, col] == 0.0

    def test_deterministic(self, layered_graph):
        a = OpFeatureExtractor(layered_graph).features
        b = OpFeatureExtractor(layered_graph).features
        assert np.array_equal(a, b)

    def test_positional_features_separate_distant_ops(self):
        """Ops far apart in a chain get distinct Laplacian coordinates even
        when everything else about them is identical."""
        from repro.graph.models import build_chain

        g = build_chain(length=30)
        ex = OpFeatureExtractor(g, num_eigvecs=4)
        pe = ex.features[:, -4:]
        head, tail = pe[1], pe[-1]
        assert not np.allclose(head, tail, atol=1e-3)

    def test_num_eigvecs_zero(self, small_graph):
        ex0 = OpFeatureExtractor(small_graph, num_eigvecs=0)
        ex8 = OpFeatureExtractor(small_graph, num_eigvecs=8)
        assert ex8.dim >= ex0.dim

    def test_magnitude_columns_log_scaled(self, small_graph):
        ex = OpFeatureExtractor(small_graph)
        # columns [num_types .. num_types+2] are log-scaled to [0, 1]
        mags = ex.features[:, ex.num_types : ex.num_types + 3]
        assert mags.min() >= 0.0 and mags.max() <= 1.0
