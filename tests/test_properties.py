"""Property-based tests (hypothesis) on the core data structures and
invariants: graph topology, simulator physics, partitioners, autograd,
and the fault-injection / retry-policy machinery."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.graph.models import build_random_layered
from repro.graph.training import expand_training_graph
from repro.grouping import cut_cost, partition_kway
from repro.grouping.fluid import asyn_fluidc_assignment
from repro.nn import Tensor
from repro.rl import EMABaseline, reward_from_time
from repro.sim import BatchSimulator, FaultPlan, OutOfMemoryError, Simulator, Topology

SETTINGS = dict(max_examples=25, deadline=None)

graph_strategy = st.builds(
    build_random_layered,
    num_layers=st.integers(2, 6),
    width=st.integers(2, 6),
    edge_prob=st.floats(0.2, 0.8),
    seed=st.integers(0, 10_000),
)


class TestGraphProperties:
    @given(graph=graph_strategy)
    @settings(**SETTINGS)
    def test_topological_order_is_permutation_respecting_edges(self, graph):
        order = graph.topological_order()
        assert sorted(order) == list(range(graph.num_ops))
        pos = {v: i for i, v in enumerate(order)}
        for s, d in graph.edges():
            assert pos[s] < pos[d]

    @given(graph=graph_strategy)
    @settings(**SETTINGS)
    def test_training_expansion_preserves_acyclicity(self, graph):
        expand_training_graph(graph).validate()

    @given(graph=graph_strategy)
    @settings(**SETTINGS)
    def test_coarsen_conserves_totals(self, graph):
        rng = np.random.default_rng(0)
        k = 4
        assignment = rng.integers(0, k, size=graph.num_ops)
        gg = graph.coarsen(assignment, num_groups=k)
        assert gg.group_flops.sum() == pytest.approx(graph.total_flops())
        assert int(gg.group_sizes.sum()) == graph.num_ops


class TestPartitionProperties:
    @given(graph=graph_strategy, k=st.integers(2, 8), seed=st.integers(0, 100))
    @settings(**SETTINGS)
    def test_partition_is_total_and_in_range(self, graph, k, seed):
        a = partition_kway(graph, k, seed=seed)
        assert a.shape == (graph.num_ops,)
        assert a.min() >= 0 and a.max() < k

    @given(graph=graph_strategy, k=st.integers(2, 6))
    @settings(**SETTINGS)
    def test_metis_cut_not_worse_than_random_mean(self, graph, k):
        # On tiny graphs a random assignment can degenerate to a single
        # group (cut 0) while a k-way partition must use k groups — only
        # compare when the graph comfortably exceeds k groups.  The random
        # baseline must be *balanced* like the partitioner's output: on small
        # dense graphs an unconstrained random assignment can luck into a
        # lopsided split whose cut no balance-respecting partition can match.
        assume(graph.num_ops >= 4 * k)
        metis = cut_cost(graph, partition_kway(graph, k))
        rng = np.random.default_rng(0)

        def balanced_random_cut() -> float:
            assignment = np.empty(graph.num_ops, dtype=np.int64)
            for group, chunk in enumerate(np.array_split(rng.permutation(graph.num_ops), k)):
                assignment[chunk] = group
            return cut_cost(graph, assignment)

        random_cuts = [balanced_random_cut() for _ in range(5)]
        assert metis <= np.mean(random_cuts) * 1.05

    @given(graph=graph_strategy, k=st.integers(2, 6), seed=st.integers(0, 50))
    @settings(**SETTINGS)
    def test_fluid_is_total_and_in_range(self, graph, k, seed):
        a = asyn_fluidc_assignment(graph, k, seed=seed, use_networkx=False)
        assert a.shape == (graph.num_ops,)
        assert a.min() >= 0


class TestSimulatorProperties:
    @given(graph=graph_strategy, seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_makespan_bounds(self, graph, seed):
        """Any valid placement's makespan lies between the critical-path
        lower bound and the total serial work on the slowest device."""
        topo = Topology.default_4gpu(num_gpus=2)
        sim = Simulator(graph, topo)
        rng = np.random.default_rng(seed)
        p = rng.integers(0, topo.num_devices, size=graph.num_ops)
        try:
            bd = sim.simulate(p)
        except OutOfMemoryError:
            assume(False)
        assert bd.makespan >= sim.lower_bound() * 0.999
        assert bd.makespan >= bd.device_busy.max() * 0.999

    @given(graph=graph_strategy, seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_memory_accounting_conserved(self, graph, seed):
        """Total resident bytes are placement-invariant (just redistributed)."""
        topo = Topology.default_4gpu(num_gpus=2)
        sim = Simulator(graph, topo)
        rng = np.random.default_rng(seed)
        p1 = rng.integers(0, topo.num_devices, size=graph.num_ops)
        p2 = rng.integers(0, topo.num_devices, size=graph.num_ops)
        assert sim.memory_usage(p1).sum() == pytest.approx(sim.memory_usage(p2).sum())

    @given(graph=graph_strategy)
    @settings(**SETTINGS)
    def test_single_device_has_no_cross_traffic(self, graph):
        """All ops on the CPU (the only device every op can run on) must
        incur zero communication."""
        topo = Topology.default_4gpu(num_gpus=2)
        sim = Simulator(graph, topo)
        bd = sim.simulate(np.zeros(graph.num_ops, dtype=np.int64))
        assert bd.comm_bytes == 0.0


class TestBatchSimulatorProperties:
    """The vectorized sweep is bit-for-bit the scalar loop, on *generated*
    graphs and topologies — not just the benchmark graphs the golden suite
    pins (``tests/sim/test_batch_simulator.py``)."""

    @given(
        graph=graph_strategy,
        num_gpus=st.integers(1, 4),
        seed=st.integers(0, 1000),
        k=st.integers(1, 8),
    )
    @settings(**SETTINGS)
    def test_batch_equals_scalar_bit_for_bit(self, graph, num_gpus, seed, k):
        topo = Topology.default_4gpu(num_gpus=num_gpus)
        sim = Simulator(graph, topo)
        batch = BatchSimulator(sim)
        rng = np.random.default_rng(seed)
        placements = [
            rng.integers(0, topo.num_devices, size=graph.num_ops) for _ in range(k)
        ]
        result = batch.simulate_batch(placements)
        for i, p in enumerate(placements):
            try:
                bd = sim.simulate(p)
            except OutOfMemoryError as exc:
                assert result.step_times[i] == float("inf")
                assert result.oom_details[i] == exc.overcommitted
            else:
                assert result.step_times[i] == bd.makespan
                assert result.critical_op[i] == bd.critical_op
                assert np.array_equal(result.device_busy[i], bd.device_busy)

    @given(graph=graph_strategy, seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_lower_bound_bounds_every_feasible_lane(self, graph, seed):
        """``lower_bound() <= step_time()`` for any feasible placement."""
        topo = Topology.default_4gpu(num_gpus=2)
        sim = Simulator(graph, topo)
        batch = BatchSimulator(sim)
        rng = np.random.default_rng(seed)
        placements = [
            rng.integers(0, topo.num_devices, size=graph.num_ops) for _ in range(6)
        ]
        times = batch.step_times(placements)
        finite = times[np.isfinite(times)]
        assume(finite.size)
        assert np.all(sim.lower_bound() <= finite)


class TestRewardProperties:
    @given(times=st.lists(st.floats(0.001, 100.0), min_size=1, max_size=30))
    @settings(**SETTINGS)
    def test_reward_order_reversed(self, times):
        rewards = [reward_from_time(t) for t in times]
        assert np.argmax(rewards) == np.argmin(times)

    @given(
        rewards=st.lists(st.floats(-10, 10), min_size=1, max_size=50),
        decay=st.floats(0.1, 0.99),
    )
    @settings(**SETTINGS)
    def test_ema_stays_within_observed_range(self, rewards, decay):
        b = EMABaseline(decay=decay)
        b.update(rewards)
        assert min(rewards) - 1e-9 <= b.value <= max(rewards) + 1e-9


fault_plan_strategy = st.builds(
    FaultPlan,
    crash_rate=st.floats(0.0, 0.45),
    straggler_rate=st.floats(0.0, 0.45),
    corruption_rate=st.floats(0.0, 0.45),
    seed=st.integers(0, 10_000),
)


class TestFaultPolicyProperties:
    """For any seeded FaultPlan: a search with retries enabled terminates,
    never surfaces a corrupted (non-finite / non-positive) best time, and
    the fault accounting balances exactly."""

    def _run(self, plan, vectorized=False):
        from repro.core import EvaluationPolicy, PlacementSearch, PostAgent, SearchConfig
        from repro.sim import (
            FaultInjectingBackend,
            PlacementEnvironment,
            SerialBackend,
        )

        graph = build_random_layered(num_layers=4, width=3, seed=11)
        topo = Topology.default_4gpu(num_gpus=2)
        env = PlacementEnvironment(graph, topo, seed=0, setup_time=1.0)
        agent = PostAgent(graph, topo.num_devices, num_groups=4, seed=0)
        config = SearchConfig(max_samples=16, minibatch_size=8)
        backend = FaultInjectingBackend(SerialBackend(env, vectorized=vectorized), plan)
        # max_step_time below the plan's outlier scale makes corruption
        # detection complete, so backend and engine accounting must agree.
        policy = EvaluationPolicy(max_retries=3, max_step_time=60.0)
        result = PlacementSearch(
            agent, env, "ppo", config, backend=backend, policy=policy
        ).run()
        return result, backend

    @given(plan=fault_plan_strategy)
    @settings(max_examples=10, deadline=None)
    def test_search_terminates_with_balanced_accounting(self, plan):
        result, backend = self._run(plan)
        # terminated with the full sample budget: quarantine, never abort
        assert result.num_samples == 16
        # the loop invariant of the retry policy
        assert result.num_faults == result.num_retries + result.num_quarantined
        # detection is complete under these bands, so every injected crash or
        # corruption was observed by the engine (no policy timeout => injected
        # stragglers never become faults)
        assert backend.faults_injected == result.num_faults
        assert result.num_retries <= result.num_faults
        assert result.num_quarantined <= result.num_samples

    @given(plan=fault_plan_strategy)
    @settings(max_examples=10, deadline=None)
    def test_best_time_is_never_garbage(self, plan):
        result, _ = self._run(plan)
        if any(result.history.valid):
            assert np.isfinite(result.best_time) and result.best_time > 0
        else:  # every sample quarantined or invalid — best is honestly +inf
            assert result.best_time == float("inf")
        # corrupted values must never have been folded into the history
        finite = [t for t in result.history.per_step_time if np.isfinite(t)]
        assert all(0 < t <= 60.0 for t in finite)

    @given(plan=fault_plan_strategy)
    @settings(max_examples=10, deadline=None)
    def test_vectorized_batches_preserve_fault_accounting(self, plan):
        """FaultInjectingBackend over a vectorized backend (prepare_batch
        sweeps + per-placement commits) keeps the accounting invariant and
        lands on the serial run's exact numbers."""
        vec, backend_vec = self._run(plan, vectorized=True)
        assert vec.num_faults == vec.num_retries + vec.num_quarantined
        assert backend_vec.faults_injected == vec.num_faults
        serial, backend_serial = self._run(plan, vectorized=False)
        assert vec.best_time == serial.best_time
        assert vec.wall_time == serial.wall_time
        assert (vec.num_faults, vec.num_retries, vec.num_quarantined) == (
            serial.num_faults,
            serial.num_retries,
            serial.num_quarantined,
        )
        # stats must agree on everything but the operational lane counters
        # the vectorized backend adds (batch_lanes, vectorized).
        sv, ss = backend_vec.stats(), backend_serial.stats()
        shared = set(sv) & set(ss)
        assert {k: sv[k] for k in shared} == {k: ss[k] for k in shared}

    @given(plan=fault_plan_strategy)
    @settings(max_examples=5, deadline=None)
    def test_chaos_is_reproducible(self, plan):
        a, backend_a = self._run(plan)
        b, backend_b = self._run(plan)
        assert a.best_time == b.best_time
        assert a.wall_time == b.wall_time
        assert (a.num_faults, a.num_retries, a.num_quarantined) == (
            b.num_faults,
            b.num_retries,
            b.num_quarantined,
        )
        assert backend_a.stats() == backend_b.stats()


class TestAutogradProperties:
    @given(
        data=st.lists(st.floats(-3, 3), min_size=4, max_size=4),
        seed=st.integers(0, 100),
    )
    @settings(**SETTINGS)
    def test_sum_rule(self, data, seed):
        """d/dx sum(f+g) == d/dx sum(f) + d/dx sum(g)."""
        x1 = Tensor(np.array(data), requires_grad=True)
        (x1.tanh() + x1.sigmoid()).sum().backward()
        x2 = Tensor(np.array(data), requires_grad=True)
        x2.tanh().sum().backward()
        g_tanh = x2.grad.copy()
        x3 = Tensor(np.array(data), requires_grad=True)
        x3.sigmoid().sum().backward()
        assert np.allclose(x1.grad, g_tanh + x3.grad, atol=1e-10)

    @given(st.lists(st.floats(-2, 2), min_size=6, max_size=6))
    @settings(**SETTINGS)
    def test_softmax_rows_normalised(self, data):
        from repro.nn.functional import softmax

        p = softmax(Tensor(np.array(data).reshape(2, 3)))
        assert np.allclose(p.data.sum(axis=1), 1.0)
        assert np.all(p.data >= 0)
