"""Unit tests for the autograd engine: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, is_grad_enabled
from repro.nn.tensor import concatenate, stack, _unbroadcast

from tests.conftest import numeric_gradient


class TestForward:
    def test_add_values(self):
        assert np.allclose((Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])).data, [4.0, 6.0])

    def test_scalar_broadcast(self):
        out = Tensor(np.ones((2, 3))) * 2.0 + 1.0
        assert np.allclose(out.data, 3.0)

    def test_matmul_values(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_chained_ops(self):
        x = Tensor([[1.0, -2.0]])
        out = x.relu().sum()
        assert out.item() == 1.0

    def test_division(self):
        out = Tensor([6.0]) / Tensor([2.0])
        assert out.data[0] == 3.0

    def test_rsub_rdiv(self):
        x = Tensor([2.0])
        assert (10.0 - x).data[0] == 8.0
        assert (10.0 / x).data[0] == 5.0

    def test_pow(self):
        assert (Tensor([3.0]) ** 2).data[0] == 9.0

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([3.0]) ** Tensor([2.0])

    def test_int_data_preserved(self):
        t = Tensor(np.arange(3, dtype=np.int64))
        assert t.dtype == np.int64

    def test_float32_upcast(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float64

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_getitem(self):
        t = Tensor(np.arange(10.0))
        assert np.allclose(t[2:5].data, [2.0, 3.0, 4.0])

    def test_reshape_transpose(self, rng):
        a = rng.normal(size=(2, 6))
        t = Tensor(a).reshape(3, 4).transpose()
        assert t.shape == (4, 3)

    def test_comparisons_return_arrays(self):
        m = Tensor([1.0, 3.0]) > Tensor([2.0, 2.0])
        assert isinstance(m, np.ndarray)
        assert m.tolist() == [False, True]


class TestBackward:
    def test_add_mul_grads(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a * b + a).backward()
        assert a.grad[0] == pytest.approx(4.0)
        assert b.grad[0] == pytest.approx(2.0)

    def test_grad_accumulates_on_reuse(self):
        a = Tensor([1.0], requires_grad=True)
        (a + a + a).backward()
        assert a.grad[0] == pytest.approx(3.0)

    def test_broadcast_grad_shapes(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_backward_requires_scalar_without_seed(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_detached_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_seeded_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).backward(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(a.grad, [2.0, 4.0, 6.0])

    @pytest.mark.parametrize(
        "builder",
        [
            lambda t: t.exp().sum(),
            lambda t: (t + 3.1).log().sum(),
            lambda t: (t + 3.1).sqrt().sum(),
            lambda t: t.tanh().sum(),
            lambda t: t.sigmoid().sum(),
            lambda t: t.relu().sum(),
            lambda t: t.clip(-0.5, 0.5).sum(),
            lambda t: (t**3).sum(),
            lambda t: t.mean(),
            lambda t: t.max(),
            lambda t: (t * t).sum(axis=0).sum(),
            lambda t: t.reshape(6).sum(),
            lambda t: t.transpose().sum(),
            lambda t: t[0].sum(),
        ],
    )
    def test_unary_gradcheck(self, builder, rng):
        x0 = rng.normal(size=6) * 0.4

        def fn(flat):
            t = Tensor(flat.reshape(2, 3), requires_grad=True)
            return builder(t).item()

        t = Tensor(x0.reshape(2, 3), requires_grad=True)
        builder(t).backward()
        assert np.allclose(t.grad.ravel(), numeric_gradient(fn, x0), atol=1e-5)

    def test_matmul_gradcheck(self, rng):
        x0 = rng.normal(size=12)

        def fn(flat):
            a = Tensor(flat[:6].reshape(2, 3))
            b = Tensor(flat[6:].reshape(3, 2))
            return (a @ b).tanh().sum().item()

        a = Tensor(x0[:6].reshape(2, 3), requires_grad=True)
        b = Tensor(x0[6:].reshape(3, 2), requires_grad=True)
        (a @ b).tanh().sum().backward()
        grad = np.concatenate([a.grad.ravel(), b.grad.ravel()])
        assert np.allclose(grad, numeric_gradient(fn, x0), atol=1e-5)

    def test_batched_matmul_gradient(self, rng):
        a = Tensor(rng.normal(size=(4, 2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (4, 2, 3)
        assert b.grad.shape == (4, 3, 5)

    def test_matvec_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=4), requires_grad=True)
        (a @ v).sum().backward()
        assert a.grad.shape == (3, 4)
        assert v.grad.shape == (4,)
        assert np.allclose(v.grad, a.data.sum(axis=0))

    def test_sum_keepdims_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5])

    def test_concatenate_gradients(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        (out * out).sum().backward()
        assert np.allclose(a.grad, 2 * a.data)
        assert np.allclose(b.grad, 2 * b.data)

    def test_stack_gradients(self, rng):
        parts = [Tensor(rng.normal(size=3), requires_grad=True) for _ in range(4)]
        stack(parts, axis=0).sum().backward()
        for p in parts:
            assert np.allclose(p.grad, 1.0)


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        d = (a * 2).detach()
        assert not d.requires_grad


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_leading_axis_summed(self):
        g = np.ones((5, 2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.allclose(_unbroadcast(g, (2, 3)), 5.0)

    def test_kept_size_one_axis(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.allclose(out, 3.0)
