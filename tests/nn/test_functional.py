"""Tests for softmax / log-softmax / categorical helpers."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.functional import (
    categorical_entropy,
    categorical_log_prob,
    cross_entropy,
    log_softmax,
    masked_fill,
    one_hot,
    softmax,
)

from tests.conftest import numeric_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(Tensor(rng.normal(size=(4, 7))))
        assert np.allclose(p.data.sum(axis=1), 1.0)

    def test_stability_large_logits(self):
        p = softmax(Tensor([[1000.0, 1000.0, 999.0]]))
        assert np.all(np.isfinite(p.data))
        assert p.data[0, 0] > p.data[0, 2]

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_softmax_axis0(self, rng):
        p = softmax(Tensor(rng.normal(size=(3, 5))), axis=0)
        assert np.allclose(p.data.sum(axis=0), 1.0)

    def test_softmax_gradcheck(self, rng):
        x0 = rng.normal(size=6)

        def fn(flat):
            return (softmax(Tensor(flat.reshape(2, 3))) ** 2).sum().item()

        t = Tensor(x0.reshape(2, 3), requires_grad=True)
        (softmax(t) ** 2).sum().backward()
        assert np.allclose(t.grad.ravel(), numeric_gradient(fn, x0), atol=1e-5)


class TestCategorical:
    def test_one_hot_shape_and_values(self):
        oh = one_hot([0, 2], 3)
        assert oh.shape == (2, 3)
        assert np.allclose(oh, [[1, 0, 0], [0, 0, 1]])

    def test_log_prob_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        actions = np.array([0, 1, 2, 1])
        lp = categorical_log_prob(Tensor(logits), actions)
        manual = np.log(np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True))
        assert np.allclose(lp.data, manual[np.arange(4), actions])

    def test_entropy_uniform_is_log_k(self):
        ent = categorical_entropy(Tensor(np.zeros((2, 8))))
        assert np.allclose(ent.data, np.log(8))

    def test_entropy_peaked_is_small(self):
        logits = np.zeros((1, 4))
        logits[0, 0] = 50.0
        assert categorical_entropy(Tensor(logits)).data[0] < 1e-10

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = logits[1, 2] = 100.0
        ce = cross_entropy(Tensor(logits), [1, 2])
        assert ce.item() == pytest.approx(0.0, abs=1e-8)

    def test_cross_entropy_gradient_direction(self, rng):
        t = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        cross_entropy(t, [0, 1, 2, 3, 0]).backward()
        # gradient should decrease target logits (negative grad entries)
        targets = [0, 1, 2, 3, 0]
        for i, a in enumerate(targets):
            assert t.grad[i, a] < 0


class TestMaskedFill:
    def test_values(self):
        x = Tensor(np.arange(4.0))
        out = masked_fill(x, np.array([True, False, False, True]), -9.0)
        assert np.allclose(out.data, [-9.0, 1.0, 2.0, -9.0])

    def test_gradient_blocked_at_masked(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        masked_fill(x, np.array([True, False, False, True]), -9.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 1.0, 0.0])
