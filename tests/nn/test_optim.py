"""Tests for SGD / Adam / gradient clipping and initialisers."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, Tensor, clip_grad_norm, global_grad_norm
from repro.nn.module import Parameter
from repro.nn import init


def quadratic_params(rng):
    return Parameter(rng.normal(size=5))


class TestSGD:
    def test_descends_quadratic(self, rng):
        p = quadratic_params(rng)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (Tensor(0.5) * (p * p).sum()).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-6

    def test_momentum_accelerates(self, rng):
        p1 = Parameter(np.ones(3) * 5)
        p2 = Parameter(np.ones(3) * 5)
        plain, mom = SGD([p1], lr=0.01), SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in ((p1, plain), (p2, mom)):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
        assert np.abs(p2.data).max() < np.abs(p1.data).max()

    def test_skips_params_without_grad(self, rng):
        p = Parameter(np.ones(3))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad, no change
        assert np.allclose(p.data, 1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_descends_quadratic(self, rng):
        p = quadratic_params(rng)
        opt = Adam([p], lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_first_step_size_approx_lr(self):
        """With bias correction the first update has magnitude ≈ lr."""
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.01)
        (p * 1.0).sum().backward()
        opt.step()
        assert abs(10.0 - p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_invariant_to_gradient_scale(self):
        """Adam's step direction is scale-free."""
        p1, p2 = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        o1, o2 = Adam([p1], lr=0.01), Adam([p2], lr=0.01)
        (p1 * 100.0).sum().backward()
        o1.step()
        (p2 * 0.01).sum().backward()
        o2.step()
        assert p1.data[0] == pytest.approx(p2.data[0], rel=1e-4)


class TestClipping:
    def test_global_norm_computation(self):
        p1, p2 = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        p1.grad = np.array([3.0, 0.0])
        p2.grad = np.array([0.0, 4.0])
        assert global_grad_norm([p1, p2]) == pytest.approx(5.0)

    def test_clip_scales_down(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([6.0, 8.0])
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(10.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_leaves_small_gradients(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_clip_rejects_nonpositive(self):
        p = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            clip_grad_norm([p], max_norm=0.0)


class TestInit:
    def test_xavier_uniform_bounds(self, rng):
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((400, 400), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 800), rel=0.1)

    def test_orthogonal_columns(self, rng):
        w = init.orthogonal((32, 32), rng)
        assert np.allclose(w @ w.T, np.eye(32), atol=1e-8)

    def test_orthogonal_rectangular(self, rng):
        w = init.orthogonal((16, 8), rng)
        assert np.allclose(w.T @ w, np.eye(8), atol=1e-8)

    def test_orthogonal_requires_2d(self, rng):
        with pytest.raises(ValueError):
            init.orthogonal((5,), rng)

    def test_zeros(self, rng):
        assert np.allclose(init.zeros((3, 3), rng), 0.0)

    def test_initializer_signatures_uniform(self):
        """Every initialiser takes (shape, rng, ...) — zeros included."""
        import inspect

        for name in init.__all__:
            params = list(inspect.signature(getattr(init, name)).parameters)
            assert params[:2] == ["shape", "rng"], name
            fn_params = inspect.signature(getattr(init, name)).parameters
            assert fn_params["rng"].default is inspect.Parameter.empty, name
