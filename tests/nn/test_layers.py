"""Tests for Linear / Embedding / Sequential / FeedForward and Module."""

import numpy as np
import pytest

from repro.nn import Embedding, FeedForward, Linear, Sequential, Tensor


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 3, rng=rng)
        assert layer(Tensor(np.ones((5, 8)))).shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_gradients_flow_to_params(self, rng):
        layer = Linear(4, 2, rng=rng)
        layer(Tensor(np.ones((3, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert np.allclose(layer.bias.grad, 3.0)

    def test_3d_input(self, rng):
        layer = Linear(4, 2, rng=rng)
        assert layer(Tensor(np.ones((7, 3, 4)))).shape == (7, 3, 2)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 6, rng=rng)
        assert emb(np.array([1, 2, 3])).shape == (3, 6)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 6, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_per_row(self, rng):
        emb = Embedding(5, 3, rng=rng)
        emb(np.array([2, 2, 0])).sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)
        assert np.allclose(emb.weight.grad[0], 1.0)
        assert np.allclose(emb.weight.grad[1], 0.0)


class TestSequentialAndFeedForward:
    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        assert seq(Tensor(np.ones((1, 4)))).shape == (1, 2)
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)

    def test_feedforward_hidden_sizes(self, rng):
        ff = FeedForward(10, [64], 5, rng=rng)
        # two-layer MLP: 2 weight + 2 bias parameters
        assert len(ff.parameters()) == 4
        assert ff(Tensor(np.ones((2, 10)))).shape == (2, 5)

    def test_feedforward_final_layer_linear(self, rng):
        """The output layer must be raw logits (can go negative)."""
        ff = FeedForward(4, [8], 3, rng=rng)
        out = ff(Tensor(np.random.default_rng(0).normal(size=(64, 4))))
        assert (out.data < 0).any()


class TestModule:
    def test_named_parameters_are_qualified(self, rng):
        ff = FeedForward(4, [8], 3, rng=rng)
        names = [n for n, _ in ff.named_parameters()]
        assert "fc0.weight" in names and "fc1.bias" in names

    def test_state_dict_roundtrip(self, rng):
        a = FeedForward(4, [8], 3, rng=rng)
        b = FeedForward(4, [8], 3, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 4)))
        assert np.allclose(a(x).data, b(x).data)

    def test_state_dict_mismatch_raises(self, rng):
        a = FeedForward(4, [8], 3, rng=rng)
        state = a.state_dict()
        state.pop("fc0.weight")
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self, rng):
        a = FeedForward(4, [8], 3, rng=rng)
        state = a.state_dict()
        state["fc0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_zero_grad_clears(self, rng):
        ff = FeedForward(4, [8], 3, rng=rng)
        ff(Tensor(np.ones((1, 4)))).sum().backward()
        ff.zero_grad()
        assert all(p.grad is None for p in ff.parameters())

    def test_num_parameters(self, rng):
        ff = FeedForward(4, [8], 3, rng=rng)
        assert ff.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_modules_iterates_children(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng), Linear(2, 2, rng=rng))
        assert len(list(seq.modules())) == 3
