"""Tests for Bahdanau attention."""

import numpy as np
import pytest

from repro.nn import BahdanauAttention, Tensor


@pytest.fixture
def attn(rng):
    return BahdanauAttention(query_size=6, memory_size=10, attn_size=8, rng=rng)


class TestBahdanauAttention:
    def test_output_shapes(self, attn, rng):
        memory = Tensor(rng.normal(size=(7, 3, 10)))
        query = Tensor(rng.normal(size=(3, 6)))
        ctx, w = attn(query, memory)
        assert ctx.shape == (3, 10)
        assert w.shape == (7, 3)

    def test_weights_normalised_over_time(self, attn, rng):
        memory = Tensor(rng.normal(size=(7, 3, 10)))
        query = Tensor(rng.normal(size=(3, 6)))
        _, w = attn(query, memory)
        assert np.allclose(w.data.sum(axis=0), 1.0)

    def test_context_is_convex_combination(self, attn, rng):
        memory = rng.normal(size=(5, 1, 10))
        query = Tensor(rng.normal(size=(1, 6)))
        ctx, w = attn(query, Tensor(memory))
        manual = (memory * w.data[:, :, None]).sum(axis=0)
        assert np.allclose(ctx.data, manual)

    def test_precompute_matches_direct(self, attn, rng):
        memory = Tensor(rng.normal(size=(5, 2, 10)))
        query = Tensor(rng.normal(size=(2, 6)))
        proj = attn.precompute(memory)
        ctx1, w1 = attn(query, memory)
        ctx2, w2 = attn(query, memory, proj)
        assert np.allclose(ctx1.data, ctx2.data)
        assert np.allclose(w1.data, w2.data)

    def test_gradients_reach_all_parameters(self, attn, rng):
        memory = Tensor(rng.normal(size=(5, 2, 10)))
        query = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        ctx, _ = attn(query, memory)
        ctx.sum().backward()
        assert query.grad is not None
        assert attn.v.grad is not None
        assert attn.w_query.weight.grad is not None
        assert attn.w_memory.weight.grad is not None

    def test_attends_to_matching_position(self, rng):
        """A query aligned with one memory slot should put most weight there."""
        attn = BahdanauAttention(4, 4, 16, rng=rng)
        memory = np.zeros((3, 1, 4))
        memory[1, 0] = 5.0
        query = Tensor(np.full((1, 4), 5.0))
        _, w0 = attn(query, Tensor(memory))
        zero_q = Tensor(np.zeros((1, 4)))
        _, wz = attn(zero_q, Tensor(memory))
        # weights must react to the query (content-based addressing)
        assert not np.allclose(w0.data, wz.data)
