"""Tests for LSTMCell / LSTM / BiLSTM."""

import numpy as np

from repro.nn import BiLSTM, LSTM, LSTMCell, Tensor

from tests.conftest import numeric_gradient


class TestLSTMCell:
    def test_state_shapes(self, rng):
        cell = LSTMCell(4, 8, rng=rng)
        h, c = cell(Tensor(np.ones((3, 4))))
        assert h.shape == (3, 8) and c.shape == (3, 8)

    def test_forget_bias_initialised_to_one(self, rng):
        cell = LSTMCell(4, 8, rng=rng)
        assert np.allclose(cell.bias.data[8:16], 1.0)
        assert np.allclose(cell.bias.data[:8], 0.0)

    def test_state_propagates(self, rng):
        cell = LSTMCell(4, 8, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)))
        s1 = cell(x)
        s2 = cell(x, s1)
        assert not np.allclose(s1[0].data, s2[0].data)

    def test_precomputed_step_matches_forward(self, rng):
        cell = LSTMCell(4, 8, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)))
        state = cell.zero_state(2)
        h1, c1 = cell(x, state)
        proj = x @ cell.w_ih.T
        h2, c2 = cell.step_precomputed(proj, state)
        assert np.allclose(h1.data, h2.data)
        assert np.allclose(c1.data, c2.data)

    def test_gradcheck_through_cell(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        x0 = rng.normal(size=6)

        def fn(flat):
            h, c = cell(Tensor(flat.reshape(2, 3)))
            return (h * h).sum().item()

        t = Tensor(x0.reshape(2, 3), requires_grad=True)
        h, _ = cell(t)
        (h * h).sum().backward()
        assert np.allclose(t.grad.ravel(), numeric_gradient(fn, x0), atol=1e-5)


class TestLSTM:
    def test_output_shape(self, rng):
        lstm = LSTM(4, 8, rng=rng)
        out, (h, c) = lstm(Tensor(np.ones((6, 2, 4))))
        assert out.shape == (6, 2, 8)
        assert h.shape == (2, 8)

    def test_final_state_matches_last_output(self, rng):
        lstm = LSTM(4, 8, rng=rng)
        out, (h, _) = lstm(Tensor(rng.normal(size=(6, 2, 4))))
        assert np.allclose(out.data[-1], h.data)

    def test_reverse_final_state_matches_first_output(self, rng):
        lstm = LSTM(4, 8, rng=rng, reverse=True)
        out, (h, _) = lstm(Tensor(rng.normal(size=(6, 2, 4))))
        assert np.allclose(out.data[0], h.data)

    def test_matches_stepwise_cell(self, rng):
        lstm = LSTM(4, 8, rng=rng)
        x = rng.normal(size=(5, 2, 4))
        out, _ = lstm(Tensor(x))
        state = lstm.cell.zero_state(2)
        for t in range(5):
            state = lstm.cell(Tensor(x[t]), state)
            assert np.allclose(out.data[t], state[0].data, atol=1e-12)

    def test_gradients_reach_input_and_params(self, rng):
        lstm = LSTM(4, 8, rng=rng)
        x = Tensor(rng.normal(size=(5, 2, 4)), requires_grad=True)
        out, _ = lstm(x)
        out.sum().backward()
        assert x.grad.shape == (5, 2, 4)
        assert lstm.cell.w_hh.grad is not None


class TestBiLSTM:
    def test_output_concatenates_directions(self, rng):
        bi = BiLSTM(4, 8, rng=rng)
        out, (h, c) = bi(Tensor(np.ones((6, 2, 4))))
        assert out.shape == (6, 2, 16)
        assert h.shape == (2, 16)

    def test_halves_match_unidirectional(self, rng):
        bi = BiLSTM(4, 8, rng=rng)
        x = Tensor(rng.normal(size=(6, 2, 4)))
        out, _ = bi(x)
        fwd_out, _ = bi.fwd(x)
        bwd_out, _ = bi.bwd(x)
        assert np.allclose(out.data[..., :8], fwd_out.data)
        assert np.allclose(out.data[..., 8:], bwd_out.data)

    def test_direction_weights_independent(self, rng):
        bi = BiLSTM(4, 8, rng=rng)
        assert not np.allclose(bi.fwd.cell.w_ih.data, bi.bwd.cell.w_ih.data)
