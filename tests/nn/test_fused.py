"""Fused-vs-loop exact equality (``==``, never ``allclose``).

The fused hot paths — :func:`repro.nn.rnn.lstm_sweep`, batched Bahdanau
attention scores, and the :class:`Seq2SeqPlacer` fused teacher-forced
decode — promise outputs *and* gradients bit-for-bit equal to the
step-by-step loop graph.  These tests pin that promise, plus a
finite-difference check so "fused equals loop" can never degrade into
"fused equals an equally wrong loop".
"""

import numpy as np
import pytest

from repro.nn import BahdanauAttention, BiLSTM, LSTM, Tensor
from repro.nn.functional import stack
from repro.nn.rnn import LSTMCell, lstm_sweep
from repro.placement.seq2seq import Seq2SeqPlacer

from tests.conftest import numeric_gradient


def _lstm_pair(rng_seed, input_size=5, hidden=7, reverse=False):
    """Two LSTMs with identical weights, one fused and one step-by-step."""
    fused = LSTM(input_size, hidden, rng=np.random.default_rng(rng_seed),
                 reverse=reverse, fused=True)
    loop = LSTM(input_size, hidden, rng=np.random.default_rng(rng_seed),
                reverse=reverse, fused=False)
    return fused, loop


class TestLSTMSweep:
    @pytest.mark.parametrize("reverse", [False, True])
    @pytest.mark.parametrize("T,B", [(1, 1), (4, 3), (9, 2)])
    def test_forward_and_gradients_bit_for_bit(self, reverse, T, B):
        fused, loop = _lstm_pair(0, reverse=reverse)
        x = np.random.default_rng(1).normal(size=(T, B, 5))
        xa = Tensor(x.copy(), requires_grad=True)
        xb = Tensor(x.copy(), requires_grad=True)
        out_a, _ = fused(xa)
        out_b, _ = loop(xb)
        assert np.array_equal(out_a.data, out_b.data)

        w = np.random.default_rng(2).normal(size=out_a.shape)
        (out_a * Tensor(w)).sum().backward()
        (out_b * Tensor(w)).sum().backward()
        assert np.array_equal(xa.grad, xb.grad)
        for pa, pb in zip(fused.parameters(), loop.parameters()):
            assert np.array_equal(pa.grad, pb.grad), pa.name

    def test_final_state_values_match_loop(self, rng):
        fused, loop = _lstm_pair(3)
        x = Tensor(rng.normal(size=(6, 2, 5)))
        _, (ha, ca) = fused(x)
        _, (hb, cb) = loop(x)
        assert np.array_equal(ha.data, hb.data)
        assert np.array_equal(ca.data, cb.data)

    def test_sweep_rejects_empty_sequence(self, rng):
        cell = LSTMCell(4, 4, rng=rng)
        proj = Tensor(np.zeros((0, 2, 16)))
        with pytest.raises(ValueError, match="at least one timestep"):
            lstm_sweep(proj, cell, cell.zero_state(2))

    def test_gradcheck_against_finite_differences(self, rng):
        """The fused gradient is the true gradient, not just the loop's."""
        lstm = LSTM(3, 4, rng=rng, fused=True)
        x0 = rng.normal(size=2 * 2 * 3)

        def fn(flat):
            out, _ = lstm(Tensor(flat.reshape(2, 2, 3)))
            return (out * out).sum().item()

        t = Tensor(x0.reshape(2, 2, 3), requires_grad=True)
        out, _ = lstm(t)
        (out * out).sum().backward()
        assert np.allclose(t.grad.ravel(), numeric_gradient(fn, x0), atol=1e-5)

    def test_bilstm_fused_matches_loop(self, rng):
        a = BiLSTM(4, 6, rng=np.random.default_rng(5), fused=True)
        b = BiLSTM(4, 6, rng=np.random.default_rng(5), fused=False)
        x = rng.normal(size=(5, 3, 4))
        xa = Tensor(x.copy(), requires_grad=True)
        xb = Tensor(x.copy(), requires_grad=True)
        out_a, _ = a(xa)
        out_b, _ = b(xb)
        assert np.array_equal(out_a.data, out_b.data)
        out_a.sum().backward()
        out_b.sum().backward()
        assert np.array_equal(xa.grad, xb.grad)
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.grad, pb.grad), pa.name


class TestBatchedAttention:
    def _attn(self, seed):
        return BahdanauAttention(6, 8, 5, rng=np.random.default_rng(seed))

    def test_forward_and_gradients_match_per_step_calls(self):
        attn_a = self._attn(0)
        attn_b = self._attn(0)
        rng = np.random.default_rng(1)
        G, T, B = 4, 7, 3
        q = rng.normal(size=(G, B, 6))
        mem = rng.normal(size=(T, B, 8))
        qa = Tensor(q.copy(), requires_grad=True)
        qb = Tensor(q.copy(), requires_grad=True)
        ma = Tensor(mem.copy(), requires_grad=True)
        mb = Tensor(mem.copy(), requires_grad=True)

        mp_a = attn_a.precompute(ma)
        ctx_a = attn_a.forward_batched(qa, ma, mp_a)
        mp_b = attn_b.precompute(mb)
        steps = [attn_b(qb[i], mb, mp_b)[0] for i in range(G)]
        ctx_b = stack(steps, axis=0)
        assert np.array_equal(ctx_a.data, ctx_b.data)

        w = rng.normal(size=ctx_a.shape)
        (ctx_a * Tensor(w)).sum().backward()
        (ctx_b * Tensor(w)).sum().backward()
        assert np.array_equal(qa.grad, qb.grad)
        assert np.array_equal(ma.grad, mb.grad)
        for pa, pb in zip(attn_a.parameters(), attn_b.parameters()):
            assert np.array_equal(pa.grad, pb.grad), pa.name

    def test_weights_sum_to_one_implicitly(self, rng):
        """Each context is a convex combination of memory rows."""
        attn = self._attn(2)
        q = Tensor(rng.normal(size=(3, 2, 6)))
        mem = Tensor(np.ones((5, 2, 8)))
        ctx = attn.forward_batched(q, mem)
        assert np.allclose(ctx.data, 1.0)


def _placer_pair(seed, attention, **kw):
    make = lambda fused: Seq2SeqPlacer(  # noqa: E731
        embed_dim=6, num_devices=4, hidden=12, attention=attention,
        rng=np.random.default_rng(seed), fused=fused, **kw
    )
    return make(True), make(False)


class TestSeq2SeqFusedDecode:
    """End-to-end through the decoder path: logits, log-probs, entropy and
    every parameter gradient equal between fused and loop graphs."""

    @pytest.mark.parametrize("attention", ["after", "before"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_log_prob_entropy_and_grads_bit_for_bit(self, attention, seed):
        a, b = _placer_pair(seed, attention)
        rng = np.random.default_rng(100 + seed)
        G, B = 5, 3
        emb = rng.normal(size=(G, B, 6))
        devices = rng.integers(0, 4, size=(B, G))
        ea = Tensor(emb.copy(), requires_grad=True)
        eb = Tensor(emb.copy(), requires_grad=True)

        lp_a, ent_a = a.log_prob_and_entropy(ea, devices)
        lp_b, ent_b = b.log_prob_and_entropy(eb, devices)
        assert np.array_equal(lp_a.data, lp_b.data)
        assert np.array_equal(ent_a.data, ent_b.data)

        # PPO-shaped loss: weighted log-probs plus an entropy bonus.
        w = Tensor(rng.normal(size=lp_a.shape))
        ((lp_a * w).sum() + ent_a * 0.37).backward()
        ((lp_b * w).sum() + ent_b * 0.37).backward()
        assert np.array_equal(ea.grad, eb.grad)
        for pa, pb in zip(a.parameters(), b.parameters()):
            ga, gb = pa.grad, pb.grad
            assert (ga is None) == (gb is None), pa.name
            if ga is not None:
                assert np.array_equal(ga, gb), pa.name

    def test_forward_logits_bit_for_bit(self):
        a, b = _placer_pair(7, "after")
        rng = np.random.default_rng(8)
        emb = rng.normal(size=(6, 2, 6))
        devices = rng.integers(0, 4, size=(2, 6))
        la = a.forward_logits(emb, devices)
        lb = b.forward_logits(emb, devices)
        assert np.array_equal(la.data, lb.data)

    def test_single_group_single_batch_edge(self):
        a, b = _placer_pair(9, "after")
        emb = np.random.default_rng(10).normal(size=(1, 1, 6))
        devices = np.zeros((1, 1), dtype=np.int64)
        lp_a, _ = a.log_prob_and_entropy(emb, devices)
        lp_b, _ = b.log_prob_and_entropy(emb, devices)
        assert np.array_equal(lp_a.data, lp_b.data)

    def test_sampling_identical_under_same_rng(self):
        a, b = _placer_pair(11, "after")
        emb = np.random.default_rng(12).normal(size=(5, 4, 6))
        da, pa = a.sample(emb, np.random.default_rng(13))
        db, pb = b.sample(emb, np.random.default_rng(13))
        assert np.array_equal(da, db)
        assert np.array_equal(pa, pb)

    def test_fused_gradcheck_against_finite_differences(self, rng):
        placer, _ = _placer_pair(14, "after")
        G, B = 3, 2
        devices = np.random.default_rng(15).integers(0, 4, size=(B, G))
        x0 = rng.normal(size=G * B * 6)

        def fn(flat):
            lp = placer.log_prob(flat.reshape(G, B, 6), devices)
            return lp.sum().item()

        t = Tensor(x0.reshape(G, B, 6), requires_grad=True)
        placer.log_prob(t, devices).sum().backward()
        assert np.allclose(t.grad.ravel(), numeric_gradient(fn, x0), atol=1e-5)
