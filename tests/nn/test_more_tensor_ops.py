"""Additional autograd edge-case tests: dtype handling, graph topology,
reuse patterns, and shapes that the policy networks actually exercise."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn.functional import concatenate, stack


class TestGraphTopology:
    def test_diamond_reuse(self):
        """x feeds two paths that rejoin — gradient must accumulate once per
        path, in one backward pass."""
        x = Tensor([3.0], requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        (a * b).backward()  # d/dx (10 x^2) = 20 x = 60
        assert x.grad[0] == pytest.approx(60.0)

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(200):
            y = y * 1.01
        y.backward()
        assert x.grad[0] == pytest.approx(1.01**200, rel=1e-9)

    def test_shared_subexpression(self):
        x = Tensor(np.ones(3), requires_grad=True)
        s = x.sum()
        out = s * s
        out.backward()
        assert np.allclose(x.grad, 2 * 3.0)

    def test_fresh_graphs_accumulate_into_leaf(self):
        """Separate forward passes accumulate into the same leaf gradient —
        the pattern PPO uses across epochs (with zero_grad in between for
        the optimiser step, tested elsewhere)."""
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).backward()
        (x * 4.0).backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_zero_grad_then_backward(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).backward()
        x.zero_grad()
        (x * 4.0).backward()
        assert x.grad[0] == pytest.approx(4.0)


class TestMixedRequiresGrad:
    def test_constant_branch_ignored(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])  # constant
        (x * c).backward()
        assert x.grad[0] == 5.0
        assert c.grad is None

    def test_all_constant_output_has_no_graph(self):
        out = Tensor([1.0]) * Tensor([2.0])
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_inside_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            frozen = x * 10.0
        out = x * 2.0 + Tensor(frozen.data)
        out.backward()
        assert x.grad[0] == 2.0


class TestShapes:
    def test_3d_slicing_gradient(self, rng):
        x = Tensor(rng.normal(size=(4, 3, 5)), requires_grad=True)
        x[1:3].sum().backward()
        assert np.allclose(x.grad[1:3], 1.0)
        assert np.allclose(x.grad[0], 0.0)

    def test_ellipsis_style_gate_slices(self, rng):
        """The LSTM gates use trailing-axis slices on (B, 4H) tensors."""
        x = Tensor(rng.normal(size=(2, 8)), requires_grad=True)
        a = x[..., 0:4]
        b = x[..., 4:8]
        (a * b).sum().backward()
        assert np.allclose(x.grad[:, :4], x.data[:, 4:])

    def test_concatenate_axis2(self, rng):
        parts = [Tensor(rng.normal(size=(3, 2, 4)), requires_grad=True) for _ in range(3)]
        out = concatenate(parts, axis=2)
        assert out.shape == (3, 2, 12)
        out.sum().backward()
        for p in parts:
            assert np.allclose(p.grad, 1.0)

    def test_stack_middle_axis(self, rng):
        parts = [Tensor(rng.normal(size=(3, 4)), requires_grad=True) for _ in range(5)]
        out = stack(parts, axis=1)
        assert out.shape == (3, 5, 4)
        out.sum().backward()
        assert all(np.allclose(p.grad, 1.0) for p in parts)

    def test_transpose_3d_axes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        y = x.transpose(1, 0, 2)
        assert y.shape == (3, 2, 4)
        (y * y).sum().backward()
        assert np.allclose(x.grad, 2 * x.data)


class TestNumerics:
    def test_sigmoid_extreme_inputs_finite(self):
        x = Tensor(np.array([-800.0, 800.0]), requires_grad=True)
        y = x.sigmoid()
        assert np.all(np.isfinite(y.data))
        y.sum().backward()
        assert np.all(np.isfinite(x.grad))

    def test_sqrt_at_zero_does_not_nan(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        x.sqrt().sum().backward()
        assert np.isfinite(x.grad[0])

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_size_and_len(self):
        t = Tensor(np.zeros((4, 5)))
        assert t.size == 20 and len(t) == 4 and t.ndim == 2
