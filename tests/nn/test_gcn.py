"""Tests for graph convolution and adjacency normalisation."""

import numpy as np
import pytest

from repro.nn import GraphConvolution, Tensor, normalize_adjacency


class TestNormalizeAdjacency:
    def test_symmetric_output(self, rng):
        a = rng.random((5, 5))
        norm = normalize_adjacency(a)
        assert np.allclose(norm, norm.T)

    def test_self_loops_added(self):
        norm = normalize_adjacency(np.zeros((3, 3)))
        assert np.allclose(norm, np.eye(3))

    def test_no_self_loops_option(self):
        norm = normalize_adjacency(np.zeros((3, 3)), add_self_loops=False)
        assert np.allclose(norm, 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.zeros((2, 3)))

    def test_row_scale_bounded(self, rng):
        a = rng.random((6, 6))
        norm = normalize_adjacency(a)
        # eigenvalues of D^-1/2 (A+I) D^-1/2 are within [-1, 1]
        vals = np.linalg.eigvalsh(norm)
        assert vals.max() <= 1.0 + 1e-9


class TestGraphConvolution:
    def test_output_shape(self, rng):
        gc = GraphConvolution(8, 4, rng=rng)
        adj = normalize_adjacency(rng.random((6, 6)))
        out = gc(Tensor(rng.normal(size=(6, 8))), adj)
        assert out.shape == (6, 4)

    def test_isolated_node_with_self_loop_keeps_information(self, rng):
        gc = GraphConvolution(4, 4, rng=rng)
        adj = normalize_adjacency(np.zeros((3, 3)))
        x = rng.normal(size=(3, 4))
        out = gc(Tensor(x), adj)
        # with identity adjacency the GCN reduces to the linear layer
        expected = x @ gc.linear.weight.data.T + gc.linear.bias.data
        assert np.allclose(out.data, expected)

    def test_neighbour_mixing(self, rng):
        gc = GraphConvolution(4, 4, rng=rng)
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        norm = normalize_adjacency(adj)
        x = np.zeros((3, 4))
        x[1] = 1.0
        out = gc(Tensor(x), norm)
        # node 0 receives node 1's signal; node 2 does not
        base = gc.linear.bias.data * norm[2, 2]
        assert not np.allclose(out.data[0], base)

    def test_gradients_flow(self, rng):
        gc = GraphConvolution(4, 2, rng=rng)
        adj = normalize_adjacency(rng.random((3, 3)))
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gc(x, adj).sum().backward()
        assert x.grad is not None
        assert gc.linear.weight.grad is not None
